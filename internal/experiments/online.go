package experiments

import (
	"fmt"

	"edgerep/internal/core"
	"edgerep/internal/metrics"
	"edgerep/internal/online"
	"edgerep/internal/workload"
)

// OnlineVsOffline compares the offline primal-dual (sees the whole workload,
// holds allocations forever) against the online engine (irrevocable
// admission on arrival, allocations released after the hold time), sweeping
// the mean hold time. Short holds let the online engine reuse capacity and
// overtake the conservative offline bound; long holds converge to it from
// below — the extension experiment for the paper's dynamic setting (§2.4).
func OnlineVsOffline(cfg SimConfig, holdsSec []float64) (*metrics.Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(holdsSec) == 0 {
		return nil, fmt.Errorf("experiments: empty hold sweep")
	}
	t := metrics.NewTable("Online vs offline admission", "mean hold (s)", "mean admitted volume (GB)")
	for _, hold := range holdsSec {
		var offSum, lazySum, foreSum float64
		for _, seed := range cfg.Seeds {
			// Offline reference.
			pOff, err := instance(seed, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
			if err != nil {
				return nil, err
			}
			res, err := core.ApproG(pOff, core.Options{})
			if err != nil {
				return nil, err
			}
			offSum += res.Solution.Volume(pOff)

			runOnline := func(opts online.Options) (float64, error) {
				p, err := instance(seed, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
				if err != nil {
					return 0, err
				}
				arrivals, err := workload.GenerateArrivals(
					&workload.Workload{Datasets: p.Datasets, Queries: p.Queries},
					workload.ArrivalConfig{MeanRatePerSec: 0.5, MeanHoldSec: hold, Seed: seed})
				if err != nil {
					return 0, err
				}
				e := online.NewEngine(p, len(p.Queries), opts)
				for _, a := range arrivals {
					if _, err := e.Offer(online.Arrival{
						Query: a.Query, AtSec: a.AtSec, HoldSec: a.HoldSec,
					}); err != nil {
						return 0, err
					}
				}
				return e.Result().VolumeAdmitted, nil
			}
			lazy, err := runOnline(online.Options{})
			if err != nil {
				return nil, err
			}
			lazySum += lazy
			pFore, err := instance(seed, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
			if err != nil {
				return nil, err
			}
			fore, err := runOnline(online.Options{Forecast: pFore.Queries})
			if err != nil {
				return nil, err
			}
			foreSum += fore
		}
		tick := fmt.Sprintf("%g", hold)
		n := float64(len(cfg.Seeds))
		t.AddPoint("offline Appro-G (holds forever)", tick, offSum/n)
		t.AddPoint("online lazy", tick, lazySum/n)
		t.AddPoint("online + forecast", tick, foreSum/n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
