package experiments

import (
	"fmt"

	"edgerep/internal/core"
	"edgerep/internal/metrics"
	"edgerep/internal/online"
	"edgerep/internal/workload"
)

// OnlineVsOffline compares the offline primal-dual (sees the whole workload,
// holds allocations forever) against the online engine (irrevocable
// admission on arrival, allocations released after the hold time), sweeping
// the mean hold time. Short holds let the online engine reuse capacity and
// overtake the conservative offline bound; long holds converge to it from
// below — the extension experiment for the paper's dynamic setting (§2.4).
func OnlineVsOffline(cfg SimConfig, holdsSec []float64) (*metrics.Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(holdsSec) == 0 {
		return nil, fmt.Errorf("experiments: empty hold sweep")
	}
	t := metrics.NewTable("Online vs offline admission", "mean hold (s)", "mean admitted volume (GB)")
	tc := newTopoCache()
	for _, hold := range holdsSec {
		type cell struct{ off, lazy, fore float64 }
		cells := make([]cell, len(cfg.Seeds))
		err := forEachSeed(cfg.Seeds, func(i int, seed int64) error {
			// One problem per seed backs the offline reference and both
			// online runs: the engine keeps its own allocation ledger.
			p, err := tc.instance(seed, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
			if err != nil {
				return err
			}
			res, err := core.ApproG(p, core.Options{})
			if err != nil {
				return err
			}
			cells[i].off = res.Solution.Volume(p)

			runOnline := func(opts online.Options) (float64, error) {
				arrivals, err := workload.GenerateArrivals(
					&workload.Workload{Datasets: p.Datasets, Queries: p.Queries},
					workload.ArrivalConfig{MeanRatePerSec: 0.5, MeanHoldSec: hold, Seed: seed})
				if err != nil {
					return 0, err
				}
				e := online.NewEngine(p, len(p.Queries), opts)
				for _, a := range arrivals {
					if _, err := e.Offer(online.Arrival{
						Query: a.Query, AtSec: a.AtSec, HoldSec: a.HoldSec,
					}); err != nil {
						return 0, err
					}
				}
				return e.Result().VolumeAdmitted, nil
			}
			if cells[i].lazy, err = runOnline(online.Options{}); err != nil {
				return err
			}
			if cells[i].fore, err = runOnline(online.Options{Forecast: p.Queries}); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var offSum, lazySum, foreSum float64
		for _, cl := range cells {
			offSum += cl.off
			lazySum += cl.lazy
			foreSum += cl.fore
		}
		tick := fmt.Sprintf("%g", hold)
		n := float64(len(cfg.Seeds))
		t.AddPoint("offline Appro-G (holds forever)", tick, offSum/n)
		t.AddPoint("online lazy", tick, lazySum/n)
		t.AddPoint("online + forecast", tick, foreSum/n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
