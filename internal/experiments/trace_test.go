package experiments

import (
	"bytes"
	"testing"

	"edgerep/internal/instrument"
	"edgerep/internal/invariant"
)

// traceConfig is a tiny Fig-2 sweep for the trace tests: small enough to run
// twice per test, rich enough to produce both admissions and rejections.
func traceConfig() SimConfig {
	c := QuickSimConfig()
	c.Seeds = []int64{1, 2}
	c.NetworkSizes = []int{20, 50}
	return c
}

func runFig2Traced(t *testing.T, cfg SimConfig) []byte {
	t.Helper()
	instrument.ResetTrace()
	var buf bytes.Buffer
	sink := instrument.NewJSONLSink(&buf)
	instrument.SetTraceSink(sink)
	defer instrument.ResetTrace()
	if _, _, err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	instrument.ResetTrace()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenDeterministic locks the trace determinism contract: the same
// sweep traced twice in one process yields byte-identical JSONL (run IDs are
// rewound by ResetTrace, wall-clock timings are dropped by the sink).
func TestTraceGoldenDeterministic(t *testing.T) {
	cfg := traceConfig()
	a := runFig2Traced(t, cfg)
	b := runFig2Traced(t, cfg)
	if len(a) == 0 {
		t.Fatal("traced sweep produced no events")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same sweep traced differently (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTraceSweepValidatesClean is the acceptance gate: a traced Fig-2 sweep
// replays cleanly through invariant.CheckTrace — every recorded admit fits
// the replayed ledger and every recorded rejection reason survives ILP
// recomputation. Instances are re-derived in the sweep's own (x, seed, algo)
// order, which the serialized tracing mode guarantees matches run order.
func TestTraceSweepValidatesClean(t *testing.T) {
	cfg := traceConfig()
	raw := runFig2Traced(t, cfg)
	events, err := instrument.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	runs := instrument.SplitTraceRuns(events)
	algos := specialAlgos()
	want := len(cfg.NetworkSizes) * len(cfg.Seeds) * len(algos)
	if len(runs) != want {
		t.Fatalf("trace has %d runs, want %d", len(runs), want)
	}

	tc := newTopoCache()
	ri := 0
	rejects, admits := 0, 0
	for _, n := range cfg.NetworkSizes {
		for _, seed := range cfg.Seeds {
			p, err := tc.instance(seed, n, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, true)
			if err != nil {
				t.Fatal(err)
			}
			for range algos {
				run := runs[ri]
				ri++
				if vs := invariant.CheckTrace(p, run, invariant.TraceOptions{}); len(vs) != 0 {
					t.Fatalf("run %d (n=%d seed=%d algo=%s) has violations: %v",
						ri-1, n, seed, run[0].Algo, vs)
				}
				for _, ev := range run {
					switch ev.Event {
					case instrument.EventAdmit:
						admits++
					case instrument.EventReject:
						rejects++
					}
				}
			}
		}
	}
	if admits == 0 {
		t.Fatal("traced sweep recorded no admissions")
	}
	if rejects == 0 {
		t.Fatal("traced sweep recorded no rejections; the reason checker was never exercised")
	}
}
