// The ext-chaos experiment: online admission under a deterministic cloudlet
// crash schedule, comparing fault-free operation, crash-with-failover-repair
// (internal/online Crash), and crash-with-eviction-only. Everything runs in
// model time — crashes are events on the same clock as arrivals — so tables
// and traces are bit-reproducible; wall-clock chaos against real sockets
// lives in internal/testbed and is exercised by its tests and the
// edgereptestbed -chaos smoke run.
package experiments

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"edgerep/internal/consistency"
	"edgerep/internal/graph"
	"edgerep/internal/metrics"
	"edgerep/internal/online"
	"edgerep/internal/placement"
	"edgerep/internal/retry"
	"edgerep/internal/topology"
	"edgerep/internal/workload"
)

// CrashEvent is one scheduled cloudlet failure in model time.
type CrashEvent struct {
	AtSec float64
	Node  graph.NodeID
}

// chaosMix is the repo-standard splitmix64 finalizer.
func chaosMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CrashSchedule picks round(frac × #cloudlets) distinct cloudlet victims and
// spreads their crash times over the middle of [0, spanSec], fully
// determined by the seed. Data centers never crash — the paper's failure
// story is at the edge.
func CrashSchedule(p *placement.Problem, frac float64, seed int64, spanSec float64) []CrashEvent {
	var cloudlets []graph.NodeID
	for _, v := range p.Cloud.ComputeNodes() {
		if p.Cloud.Topology().Nodes[v].Kind == topology.Cloudlet {
			cloudlets = append(cloudlets, v)
		}
	}
	sort.Slice(cloudlets, func(i, j int) bool { return cloudlets[i] < cloudlets[j] })
	kills := int(math.Round(frac * float64(len(cloudlets))))
	if kills > len(cloudlets) {
		kills = len(cloudlets)
	}
	if kills <= 0 || spanSec <= 0 {
		return nil
	}
	state := uint64(seed)
	next := func() uint64 {
		state = chaosMix(state)
		return state
	}
	// Partial Fisher–Yates over the sorted cloudlet list.
	for i := 0; i < kills; i++ {
		j := i + int(next()%uint64(len(cloudlets)-i))
		cloudlets[i], cloudlets[j] = cloudlets[j], cloudlets[i]
	}
	events := make([]CrashEvent, 0, kills)
	for i := 0; i < kills; i++ {
		at := spanSec * (0.1 + 0.8*float64(next()%1000)/1000)
		events = append(events, CrashEvent{AtSec: at, Node: cloudlets[i]})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].AtSec != events[j].AtSec {
			return events[i].AtSec < events[j].AtSec
		}
		return events[i].Node < events[j].Node
	})
	return events
}

// ChaosOutcome aggregates one engine run under the crash schedule.
type ChaosOutcome struct {
	VolumeAdmitted float64
	Evicted        int
	Repaired       int
	NewReplicas    int
	ResyncGB       float64
	RetryExhausted int
}

// chaosItem is one pending event of the model-time loop: an arrival (or a
// retry of one) or a crash.
type chaosItem struct {
	at      float64
	seq     int
	crash   bool
	node    graph.NodeID
	arrival online.Arrival
	delays  []float64 // remaining admission-retry backoffs, seconds
}

type chaosHeap []chaosItem

func (h chaosHeap) Len() int { return len(h) }
func (h chaosHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h chaosHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *chaosHeap) Push(x interface{}) { *h = append(*h, x.(chaosItem)) }
func (h *chaosHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// admissionRetryPolicy derives the deterministic backoff schedule for one
// query: capped exponential delays that fit inside the query's DeadlineSec —
// once the schedule is spent, the driver gives the query up with a
// retry-exhausted reject.
func admissionRetryPolicy(p *placement.Problem, q workload.QueryID, seed int64) []float64 {
	pol := retry.Policy{
		Base:        500 * time.Millisecond,
		Cap:         4 * time.Second,
		MaxAttempts: 4,
		Seed:        seed ^ int64(q)<<1,
	}
	budget := time.Duration(p.Queries[q].DeadlineSec * float64(time.Second))
	sched := pol.Schedule(budget)
	delays := make([]float64, len(sched))
	for i, d := range sched {
		delays[i] = d.Seconds()
	}
	return delays
}

// RunChaosOnline drives one online engine through arrivals and crashes in
// model-time order. Rejected arrivals are retried on their backoff schedule
// (re-offered at a later instant, when capacity may have been released or a
// repair may have opened a replica); a query whose schedule is exhausted is
// given up with a retry-exhausted reject event.
func RunChaosOnline(p *placement.Problem, arrivals []workload.Arrival, crashes []CrashEvent, opts online.Options, seed int64) (ChaosOutcome, error) {
	var out ChaosOutcome
	e := online.NewEngine(p, len(arrivals), opts)
	m, err := consistency.NewManager(p.Cloud.Topology(), p.Datasets, e.Solution(), 0.5)
	if err != nil {
		return out, err
	}
	e.AttachConsistency(m)

	var h chaosHeap
	seq := 0
	push := func(it chaosItem) {
		it.seq = seq
		seq++
		heap.Push(&h, it)
	}
	for _, a := range arrivals {
		push(chaosItem{
			at:      a.AtSec,
			arrival: online.Arrival{Query: a.Query, AtSec: a.AtSec, HoldSec: a.HoldSec},
			delays:  admissionRetryPolicy(p, a.Query, seed),
		})
	}
	for _, c := range crashes {
		push(chaosItem{at: c.AtSec, crash: true, node: c.Node})
	}

	for h.Len() > 0 {
		it := heap.Pop(&h).(chaosItem)
		if it.crash {
			rep, err := e.Crash(it.at, it.node)
			if err != nil {
				return out, err
			}
			out.Evicted += len(rep.Evicted)
			out.Repaired += rep.Repaired
			out.NewReplicas += rep.NewReplicas
			out.ResyncGB += rep.ResyncGB
			continue
		}
		arr := it.arrival
		arr.AtSec = it.at
		dec, err := e.Offer(arr)
		if err != nil {
			return out, err
		}
		if dec.Admitted {
			continue
		}
		if len(it.delays) == 0 {
			out.RetryExhausted++
			e.EmitRetryExhausted(arr.Query)
			continue
		}
		next := it
		next.at = it.at + it.delays[0]
		next.delays = it.delays[1:]
		push(next)
	}
	e.EmitEnd()
	out.VolumeAdmitted = e.Result().VolumeAdmitted
	return out, nil
}

// ExtChaos sweeps the cloudlet crash fraction and compares three series of
// the same arrival stream: fault-free, crashes with failover repair, and
// crashes with eviction only. The repair series also reports the
// re-replication traffic its repairs cost — the consistency price of the
// retained volume.
func ExtChaos(cfg SimConfig, crashFracs []float64) (*metrics.Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(crashFracs) == 0 {
		return nil, fmt.Errorf("experiments: empty crash-fraction sweep")
	}
	t := metrics.NewTable("Failover repair under cloudlet crashes", "cloudlet crash fraction", "mean admitted volume (GB)")
	tc := newTopoCache()
	for _, frac := range crashFracs {
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("experiments: crash fraction %v outside [0,1]", frac)
		}
		type cell struct{ free, rep, norep, resync float64 }
		cells := make([]cell, len(cfg.Seeds))
		err := forEachSeed(cfg.Seeds, func(i int, seed int64) error {
			sj := activeSweepJournal()
			key := ""
			if sj != nil {
				key = sweepCellKey(t.Title, fmt.Sprintf("%g", frac), seed)
				vals, replayed, err := sj.replayCell(key, 4)
				if err != nil {
					return err
				}
				if replayed {
					cells[i] = cell{free: vals[0], rep: vals[1], norep: vals[2], resync: vals[3]}
					return nil
				}
			}
			p, err := tc.instance(seed, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
			if err != nil {
				return err
			}
			arrivals, err := workload.GenerateArrivals(
				&workload.Workload{Datasets: p.Datasets, Queries: p.Queries},
				workload.ArrivalConfig{MeanRatePerSec: 0.5, MeanHoldSec: 50, Seed: seed})
			if err != nil {
				return err
			}
			span := 0.0
			if len(arrivals) > 0 {
				span = arrivals[len(arrivals)-1].AtSec
			}
			crashes := CrashSchedule(p, frac, seed, span)
			statAlgoRuns.Inc()
			var capture *sweepCapture
			if sj != nil {
				capture = sj.beginCell()
			}
			free, err := RunChaosOnline(p, arrivals, nil, online.Options{}, seed)
			if err != nil {
				return err
			}
			rep, err := RunChaosOnline(p, arrivals, crashes, online.Options{}, seed)
			if err != nil {
				return err
			}
			norep, err := RunChaosOnline(p, arrivals, crashes, online.Options{NoRepair: true}, seed)
			if err != nil {
				return err
			}
			cells[i] = cell{free: free.VolumeAdmitted, rep: rep.VolumeAdmitted, norep: norep.VolumeAdmitted, resync: rep.ResyncGB}
			if sj != nil {
				return sj.commitCell(key, []float64{cells[i].free, cells[i].rep, cells[i].norep, cells[i].resync}, capture)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var freeSum, repSum, norepSum, resyncSum float64
		for _, cl := range cells {
			freeSum += cl.free
			repSum += cl.rep
			norepSum += cl.norep
			resyncSum += cl.resync
		}
		tick := fmt.Sprintf("%g", frac)
		n := float64(len(cfg.Seeds))
		t.AddPoint("fault-free", tick, freeSum/n)
		t.AddPoint("crashes + repair", tick, repSum/n)
		t.AddPoint("crashes, evict only", tick, norepSum/n)
		t.AddPoint("repair resync traffic (GB)", tick, resyncSum/n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
