package experiments

import (
	"fmt"

	"edgerep/internal/core"
	"edgerep/internal/metrics"
	"edgerep/internal/placement"
	"edgerep/internal/routing"
	"edgerep/internal/topology"
	"edgerep/internal/workload"
)

// AblationConfig scopes the design-choice ablations of DESIGN.md §6.
type AblationConfig struct {
	Seeds       []int64
	NumDatasets int
	NumQueries  int
	K           int
	F           int
}

// DefaultAblationConfig mirrors the default-scale simulation instance.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Seeds:       []int64{1, 2, 3, 4, 5, 6, 7, 8},
		NumDatasets: 12,
		NumQueries:  60,
		K:           3,
		F:           5,
	}
}

// Validate reports the first configuration error, or nil.
func (c AblationConfig) Validate() error {
	switch {
	case len(c.Seeds) == 0:
		return fmt.Errorf("experiments: no seeds")
	case c.NumDatasets < 1 || c.NumQueries < 1 || c.K < 1 || c.F < 1:
		return fmt.Errorf("experiments: bad ablation scale")
	}
	return nil
}

// instance builds one default-topology problem over the driver's shared
// topology cache (the topology depends only on the seed, so every variant
// and parameter value of an ablation reuses it).
func (c AblationConfig) instance(tc *topoCache, seed int64) (*placement.Problem, error) {
	return tc.instance(seed, 30, c.NumDatasets, c.NumQueries, c.F, c.K, false)
}

// meanVolume runs Appro-G with the given options across seeds, in parallel.
func (c AblationConfig) meanVolume(tc *topoCache, opt core.Options) (float64, error) {
	vols := make([]float64, len(c.Seeds))
	err := forEachSeed(c.Seeds, func(i int, seed int64) error {
		p, err := c.instance(tc, seed)
		if err != nil {
			return err
		}
		res, err := core.ApproG(p, opt)
		if err != nil {
			return err
		}
		vols[i] = res.Solution.Volume(p)
		return nil
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range vols {
		sum += v
	}
	return sum / float64(len(c.Seeds)), nil
}

// AblationPriceBase sweeps the θ price base (DESIGN.md §6).
func AblationPriceBase(c AblationConfig) (*metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: θ price base c", "c", "mean admitted volume (GB)")
	tc := newTopoCache()
	for _, base := range []float64{2, 4, 8, 16, 1 + float64(c.NumQueries)} {
		v, err := c.meanVolume(tc, core.Options{PriceBase: base})
		if err != nil {
			return nil, err
		}
		t.AddPoint("Appro-G", fmt.Sprintf("%g", base), v)
	}
	return t, nil
}

// AblationReplicaPrice sweeps the replica-opening price weight.
func AblationReplicaPrice(c AblationConfig) (*metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: replica price weight", "w", "mean admitted volume (GB)")
	tc := newTopoCache()
	for _, w := range []float64{0.05, 0.1, 0.25, 0.5, 1.0, 2.0} {
		v, err := c.meanVolume(tc, core.Options{ReplicaPriceWeight: w})
		if err != nil {
			return nil, err
		}
		t.AddPoint("Appro-G", fmt.Sprintf("%g", w), v)
	}
	return t, nil
}

// AblationDelayPrice sweeps the deadline-slack price weight.
func AblationDelayPrice(c AblationConfig) (*metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: delay price weight", "w", "mean admitted volume (GB)")
	tc := newTopoCache()
	for _, w := range []float64{0.05, 0.15, 0.4, 1.0} {
		v, err := c.meanVolume(tc, core.Options{DelayPriceWeight: w})
		if err != nil {
			return nil, err
		}
		t.AddPoint("Appro-G", fmt.Sprintf("%g", w), v)
	}
	return t, nil
}

// AblationMechanisms toggles the structural switches: proactive placement,
// ordering, and bundle semantics, reporting both the objective volume and —
// for partial admission, which serves fractions of bundles — the raw served
// volume.
func AblationMechanisms(c AblationConfig) (*metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: algorithm mechanisms", "variant", "mean volume (GB)")
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"default", core.Options{}},
		{"lazy-replication", core.Options{NoProactivePlacement: true}},
		{"id-order", core.Options{ArbitraryOrder: true}},
		{"partial-bundles", core.Options{PartialAdmission: true}},
	}
	tc := newTopoCache()
	for _, variant := range variants {
		type cell struct{ obj, served float64 }
		cells := make([]cell, len(c.Seeds))
		err := forEachSeed(c.Seeds, func(i int, seed int64) error {
			p, err := c.instance(tc, seed)
			if err != nil {
				return err
			}
			res, err := core.ApproG(p, variant.opt)
			if err != nil {
				return err
			}
			cells[i].obj = res.Solution.Volume(p)
			for _, a := range res.Solution.Assignments {
				cells[i].served += p.Datasets[a.Dataset].SizeGB
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var objSum, servedSum float64
		for _, cl := range cells {
			objSum += cl.obj
			servedSum += cl.served
		}
		n := float64(len(c.Seeds))
		t.AddPoint("objective (admitted bundles)", variant.name, objSum/n)
		t.AddPoint("served volume", variant.name, servedSum/n)
	}
	return t, nil
}

// AblationTopologyModel compares the flat GT-ITM model the paper uses with
// the hierarchical transit-stub model, on identical workload statistics.
func AblationTopologyModel(c AblationConfig) (*metrics.Table, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: topology model", "model", "mean value")
	for _, model := range []string{"flat", "transit-stub"} {
		type cell struct{ vol, tp, foot float64 }
		cells := make([]cell, len(c.Seeds))
		err := forEachSeed(c.Seeds, func(i int, seed int64) error {
			var top *topology.Topology
			var err error
			switch model {
			case "flat":
				tc := topology.DefaultConfig()
				tc.Seed = seed
				top, err = topology.Generate(tc)
			default:
				tc := topology.DefaultTransitStubConfig()
				tc.Seed = seed
				top, err = topology.GenerateTransitStub(tc)
			}
			if err != nil {
				return err
			}
			wc := workload.DefaultConfig()
			wc.Seed = seed
			wc.NumDatasets = c.NumDatasets
			wc.NumQueries = c.NumQueries
			wc.MaxDatasetsPerQuery = c.F
			w, err := workload.Generate(wc, top)
			if err != nil {
				return err
			}
			p, err := newProblem(top, w, c.K)
			if err != nil {
				return err
			}
			res, err := core.ApproG(p, core.Options{})
			if err != nil {
				return err
			}
			cells[i].vol = res.Solution.Volume(p)
			cells[i].tp = res.Solution.Throughput(p)
			fp, err := routing.MeasureFootprint(p, res.Solution, routing.NewRouter(top))
			if err != nil {
				return err
			}
			cells[i].foot = fp.TotalGBHops
			return nil
		})
		if err != nil {
			return nil, err
		}
		var volSum, tpSum, footSum float64
		for _, cl := range cells {
			volSum += cl.vol
			tpSum += cl.tp
			footSum += cl.foot
		}
		n := float64(len(c.Seeds))
		t.AddPoint("volume (GB)", model, volSum/n)
		t.AddPoint("throughput", model, tpSum/n)
		t.AddPoint("traffic (GB·hops)", model, footSum/n)
	}
	return t, nil
}
