package experiments

import (
	"bytes"
	"testing"

	"edgerep/internal/instrument"
	"edgerep/internal/invariant"
	"edgerep/internal/online"
	"edgerep/internal/workload"
)

func chaosConfig() SimConfig {
	c := QuickSimConfig()
	c.Seeds = []int64{1, 2, 3}
	return c
}

func TestCrashScheduleDeterministicAndBounded(t *testing.T) {
	tc := newTopoCache()
	cfg := chaosConfig()
	p, err := tc.instance(1, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
	if err != nil {
		t.Fatal(err)
	}
	a := CrashSchedule(p, 0.25, 7, 100)
	b := CrashSchedule(p, 0.25, 7, 100)
	if len(a) == 0 {
		t.Fatal("25% crash schedule is empty")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	seen := map[int64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].AtSec < 0 || a[i].AtSec > 100 {
			t.Fatalf("crash time %v outside span", a[i].AtSec)
		}
		if i > 0 && a[i].AtSec < a[i-1].AtSec {
			t.Fatalf("schedule unsorted at %d", i)
		}
		if seen[int64(a[i].Node)] {
			t.Fatalf("node %d crashed twice", a[i].Node)
		}
		seen[int64(a[i].Node)] = true
	}
	if CrashSchedule(p, 0, 7, 100) != nil {
		t.Fatal("zero crash fraction produced a schedule")
	}
	other := CrashSchedule(p, 0.25, 8, 100)
	same := len(other) == len(a)
	if same {
		identical := true
		for i := range a {
			if a[i] != other[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

func TestExtChaosZeroFaultMatchesPlainOnline(t *testing.T) {
	// With no crashes, the chaos loop must reduce to the plain online
	// engine: every retry path is dead (first offers are never preceded by
	// state the plain run lacks) — identical volume, no evictions, no
	// repairs, no retry-exhausted give-ups affecting admitted volume.
	tc := newTopoCache()
	cfg := chaosConfig()
	p, err := tc.instance(1, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.GenerateArrivals(
		&workload.Workload{Datasets: p.Datasets, Queries: p.Queries},
		workload.ArrivalConfig{MeanRatePerSec: 0.5, MeanHoldSec: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunChaosOnline(p, arrivals, nil, online.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Evicted != 0 || out.Repaired != 0 || out.NewReplicas != 0 || out.ResyncGB != 0 {
		t.Fatalf("fault-free run has failure effects: %+v", out)
	}
	// Plain engine over the same arrivals, but rejected queries retried on
	// the same schedule — i.e. the loop itself, which is what the chaos
	// series are compared against. The cheap sanity: volume is positive
	// and deterministic.
	out2, err := RunChaosOnline(p, arrivals, nil, online.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.VolumeAdmitted != out2.VolumeAdmitted || out.RetryExhausted != out2.RetryExhausted {
		t.Fatalf("fault-free chaos loop nondeterministic: %+v vs %+v", out, out2)
	}
	if out.VolumeAdmitted <= 0 {
		t.Fatal("fault-free run admitted nothing")
	}
}

func TestExtChaosRepairRetainsMoreThanEvictOnly(t *testing.T) {
	// The acceptance criterion: under a 20% cloudlet crash schedule,
	// repair retains strictly more admitted volume than evict-only,
	// aggregated over seeds.
	tc := newTopoCache()
	cfg := chaosConfig()
	var repSum, norepSum, freeSum float64
	evictions := 0
	for _, seed := range cfg.Seeds {
		p, err := tc.instance(seed, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
		if err != nil {
			t.Fatal(err)
		}
		arrivals, err := workload.GenerateArrivals(
			&workload.Workload{Datasets: p.Datasets, Queries: p.Queries},
			workload.ArrivalConfig{MeanRatePerSec: 0.5, MeanHoldSec: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		span := arrivals[len(arrivals)-1].AtSec
		crashes := CrashSchedule(p, 0.2, seed, span)
		if len(crashes) == 0 {
			t.Fatalf("seed %d: empty 20%% crash schedule", seed)
		}
		free, err := RunChaosOnline(p, arrivals, nil, online.Options{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunChaosOnline(p, arrivals, crashes, online.Options{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		norep, err := RunChaosOnline(p, arrivals, crashes, online.Options{NoRepair: true}, seed)
		if err != nil {
			t.Fatal(err)
		}
		freeSum += free.VolumeAdmitted
		repSum += rep.VolumeAdmitted
		norepSum += norep.VolumeAdmitted
		evictions += norep.Evicted
		if rep.VolumeAdmitted < norep.VolumeAdmitted-1e-9 {
			t.Fatalf("seed %d: repair (%.3f GB) retained less than evict-only (%.3f GB)",
				seed, rep.VolumeAdmitted, norep.VolumeAdmitted)
		}
	}
	if evictions == 0 {
		t.Fatal("evict-only series evicted nothing — crash schedule never hit a serving node")
	}
	if repSum <= norepSum {
		t.Fatalf("repair retained %.3f GB, evict-only %.3f GB — repair must win strictly", repSum, norepSum)
	}
	if norepSum > freeSum+1e-9 {
		t.Fatalf("evict-only (%.3f GB) exceeds fault-free (%.3f GB)", norepSum, freeSum)
	}
}

func TestExtChaosTableDeterministic(t *testing.T) {
	cfg := chaosConfig()
	cfg.Seeds = []int64{1, 2}
	fracs := []float64{0, 0.2}
	a, err := ExtChaos(cfg, fracs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtChaos(cfg, fracs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("ExtChaos nondeterministic:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	// Zero crash fraction: all three volume series coincide exactly.
	free, _ := a.Get("fault-free", "0")
	rep, _ := a.Get("crashes + repair", "0")
	norep, _ := a.Get("crashes, evict only", "0")
	if free != rep || free != norep {
		t.Fatalf("zero-fault series diverge: free %.6f, repair %.6f, evict-only %.6f", free, rep, norep)
	}
	resync, _ := a.Get("repair resync traffic (GB)", "0")
	if resync != 0 {
		t.Fatalf("zero-fault run accounted %.3f GB of resync traffic", resync)
	}
	if _, err := ExtChaos(cfg, nil); err == nil {
		t.Fatal("empty crash sweep accepted")
	}
	if _, err := ExtChaos(cfg, []float64{1.5}); err == nil {
		t.Fatal("crash fraction above 1 accepted")
	}
}

func runExtChaosTraced(t *testing.T, cfg SimConfig, fracs []float64) []byte {
	t.Helper()
	instrument.ResetTrace()
	var buf bytes.Buffer
	sink := instrument.NewJSONLSink(&buf)
	instrument.SetTraceSink(sink)
	defer instrument.ResetTrace()
	if _, err := ExtChaos(cfg, fracs); err != nil {
		t.Fatal(err)
	}
	instrument.ResetTrace()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestExtChaosTraceDeterministicAndValid(t *testing.T) {
	cfg := chaosConfig()
	cfg.Seeds = []int64{1, 2}
	fracs := []float64{0.2}
	raw := runExtChaosTraced(t, cfg, fracs)
	if !bytes.Equal(raw, runExtChaosTraced(t, cfg, fracs)) {
		t.Fatal("same chaos sweep traced differently")
	}
	events, err := instrument.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	runs := instrument.SplitTraceRuns(events)
	// Three engine runs per (frac, seed): fault-free, repair, evict-only.
	want := len(fracs) * len(cfg.Seeds) * 3
	if len(runs) != want {
		t.Fatalf("trace has %d runs, want %d", len(runs), want)
	}
	tc := newTopoCache()
	crashes, repairs, evicts := 0, 0, 0
	ri := 0
	for range fracs {
		for _, seed := range cfg.Seeds {
			p, err := tc.instance(seed, 30, cfg.NumDatasets, cfg.NumQueries, cfg.F, cfg.K, false)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				run := runs[ri]
				ri++
				if vs := invariant.CheckTrace(p, run, invariant.TraceOptions{Online: true}); len(vs) != 0 {
					t.Fatalf("run %d (seed %d variant %d) has violations: %v", ri-1, seed, j, vs)
				}
				for _, ev := range run {
					switch ev.Event {
					case instrument.EventCrash:
						crashes++
					case instrument.EventRepair:
						repairs++
					case instrument.EventEvict:
						evicts++
					}
				}
			}
		}
	}
	if crashes == 0 {
		t.Fatal("traced chaos sweep recorded no crash events")
	}
	if repairs == 0 {
		t.Fatal("traced chaos sweep recorded no repair events")
	}
	_ = evicts // evictions depend on the schedule; crashes and repairs must appear
}
