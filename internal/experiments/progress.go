package experiments

import (
	"encoding/json"
	"sync"
)

// Sweep progress: a process-global ledger of the figure sweep currently
// running, fed by sweep/testbedFigure and served as JSON by the ops
// endpoint's /progress (internal/ops). Sweeps run one at a time in the cmd/
// drivers, so a single slot suffices; a second concurrent sweep simply
// overwrites the slot and the ledger reports the most recent one.
var progress struct {
	sync.Mutex
	s ProgressSnapshot
}

// ProgressSnapshot is the /progress JSON document.
type ProgressSnapshot struct {
	// Sweep is the title of the running (or last finished) figure sweep;
	// empty when no sweep has run in this process.
	Sweep string `json:"sweep"`
	// Active reports whether the sweep is still running.
	Active bool `json:"active"`
	// Points counts sweep x-axis points; Runs counts individual algorithm
	// executions (points × seeds × algorithms).
	TotalPoints     int `json:"total_points"`
	CompletedPoints int `json:"completed_points"`
	TotalRuns       int `json:"total_runs"`
	CompletedRuns   int `json:"completed_runs"`
}

func progressStart(title string, totalRuns, totalPoints int) {
	progress.Lock()
	progress.s = ProgressSnapshot{
		Sweep:       title,
		Active:      true,
		TotalPoints: totalPoints,
		TotalRuns:   totalRuns,
	}
	progress.Unlock()
}

func progressStep() {
	progress.Lock()
	progress.s.CompletedRuns++
	progress.Unlock()
}

func progressPointDone() {
	progress.Lock()
	progress.s.CompletedPoints++
	progress.Unlock()
}

func progressFinish() {
	progress.Lock()
	progress.s.Active = false
	progress.Unlock()
}

// Progress returns the current sweep progress snapshot.
func Progress() ProgressSnapshot {
	progress.Lock()
	defer progress.Unlock()
	return progress.s
}

// ProgressJSON renders the snapshot for the ops endpoint.
func ProgressJSON() ([]byte, error) {
	return json.Marshal(Progress())
}
