package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := DefaultTraceConfig()
	c.Records = 800
	recs, err := GenerateTrace(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].UserID != recs[i].UserID || got[i].AppID != recs[i].AppID ||
			!got[i].Start.Equal(recs[i].Start) || got[i].DurationS != recs[i].DurationS {
			t.Fatalf("record %d mutated: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestLoadTraceSortsUnorderedInput(t *testing.T) {
	later := `{"user":1,"app":2,"start":"2019-03-01T10:00:00Z","duration_s":60}`
	earlier := `{"user":2,"app":3,"start":"2019-01-01T10:00:00Z","duration_s":30}`
	recs, err := LoadTrace(strings.NewReader(later + "\n" + earlier + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].Start.Before(recs[1].Start) {
		t.Fatalf("trace not sorted: %v then %v", recs[0].Start, recs[1].Start)
	}
}

func TestLoadTraceSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"user":1,"app":2,"start":"2019-03-01T10:00:00Z","duration_s":60}` + "\n\n"
	recs, err := LoadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
}

func TestLoadTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":           "not-json\n",
		"negative-user":     `{"user":-1,"app":2,"start":"2019-03-01T10:00:00Z","duration_s":60}`,
		"negative-app":      `{"user":1,"app":-2,"start":"2019-03-01T10:00:00Z","duration_s":60}`,
		"missing-start":     `{"user":1,"app":2,"duration_s":60}`,
		"negative-duration": `{"user":1,"app":2,"start":"2019-03-01T10:00:00Z","duration_s":-5}`,
		"empty":             "",
	}
	for name, in := range cases {
		if _, err := LoadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSummarize(t *testing.T) {
	base := time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC)
	recs := []UsageRecord{
		{UserID: 1, AppID: 10, Start: base, DurationS: 3600},
		{UserID: 2, AppID: 10, Start: base.Add(time.Hour), DurationS: 1800},
		{UserID: 1, AppID: 11, Start: base.Add(2 * time.Hour), DurationS: 1800},
	}
	st := Summarize(recs)
	if st.Records != 3 || st.DistinctUsers != 2 || st.DistinctApps != 2 {
		t.Fatalf("bad stats %+v", st)
	}
	if !st.Start.Equal(base) || !st.End.Equal(base.Add(2*time.Hour)) {
		t.Fatalf("bad window %v..%v", st.Start, st.End)
	}
	if st.TotalHours != 2 {
		t.Fatalf("total hours %v, want 2", st.TotalHours)
	}
	if empty := Summarize(nil); empty.Records != 0 {
		t.Fatal("Summarize(nil) non-zero")
	}
}
