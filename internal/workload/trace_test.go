package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateTraceBasics(t *testing.T) {
	c := DefaultTraceConfig()
	c.Records = 5000
	recs, err := GenerateTrace(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5000 {
		t.Fatalf("got %d records, want 5000", len(recs))
	}
	end := c.Start.Add(time.Duration(c.Days) * 24 * time.Hour)
	for i, r := range recs {
		if r.UserID < 0 || r.UserID >= int64(c.Users) {
			t.Fatalf("record %d user %d outside [0,%d)", i, r.UserID, c.Users)
		}
		if r.AppID < 0 || r.AppID >= c.Apps {
			t.Fatalf("record %d app %d outside [0,%d)", i, r.AppID, c.Apps)
		}
		if r.Start.Before(c.Start) || !r.Start.Before(end) {
			t.Fatalf("record %d start %v outside window", i, r.Start)
		}
		if r.DurationS < 5 || r.DurationS > 7200 {
			t.Fatalf("record %d duration %d outside [5,7200]", i, r.DurationS)
		}
		if i > 0 && recs[i].Start.Before(recs[i-1].Start) {
			t.Fatalf("records not sorted by start at %d", i)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	c := DefaultTraceConfig()
	c.Records = 2000
	a, err := GenerateTrace(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateTracePopularitySkewed(t *testing.T) {
	c := DefaultTraceConfig()
	c.Records = 20000
	recs, err := GenerateTrace(c)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, c.Apps)
	for _, r := range recs {
		counts[r.AppID]++
	}
	top, total := 0, 0
	for app, n := range counts {
		total += n
		if app < 10 {
			top += n
		}
	}
	// Zipf(1.2): the ten most popular app IDs must carry a clear majority.
	if float64(top)/float64(total) < 0.5 {
		t.Fatalf("top-10 apps carry only %.1f%% of events — popularity not Zipf-like",
			100*float64(top)/float64(total))
	}
}

func TestTraceValidation(t *testing.T) {
	bad := []TraceConfig{
		{Users: 0, Apps: 1, Records: 1, ZipfS: 1.2, Days: 1},
		{Users: 1, Apps: 0, Records: 1, ZipfS: 1.2, Days: 1},
		{Users: 1, Apps: 1, Records: 0, ZipfS: 1.2, Days: 1},
		{Users: 1, Apps: 1, Records: 1, ZipfS: 1.0, Days: 1},
		{Users: 1, Apps: 1, Records: 1, ZipfS: 1.2, Days: 0},
	}
	for i, c := range bad {
		if _, err := GenerateTrace(c); err == nil {
			t.Fatalf("bad trace config %d accepted", i)
		}
	}
}

func TestPartitionTrace(t *testing.T) {
	c := DefaultTraceConfig()
	c.Records = 1003
	recs, err := GenerateTrace(c)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionTrace(recs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("got %d partitions, want 10", len(parts))
	}
	total := 0
	for i, p := range parts {
		if len(p) == 0 {
			t.Fatalf("partition %d empty", i)
		}
		total += len(p)
		// Time-ordered partitioning: every record in partition i starts
		// no later than every record in partition i+1.
		if i > 0 {
			prev := parts[i-1]
			if p[0].Start.Before(prev[len(prev)-1].Start) {
				t.Fatalf("partition %d not time-ordered after %d", i, i-1)
			}
		}
	}
	if total != len(recs) {
		t.Fatalf("partitions cover %d records, want %d", total, len(recs))
	}
}

func TestPartitionTraceErrors(t *testing.T) {
	recs := make([]UsageRecord, 3)
	if _, err := PartitionTrace(recs, 0); err == nil {
		t.Fatal("partition into 0 accepted")
	}
	if _, err := PartitionTrace(recs, 4); err == nil {
		t.Fatal("partitioning 3 records into 4 accepted")
	}
}

// Property: partitioning preserves record multiset sizes for any count.
func TestPartitionSizesProperty(t *testing.T) {
	c := DefaultTraceConfig()
	c.Records = 500
	recs, err := GenerateTrace(c)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw)%20
		parts, err := PartitionTrace(recs, n)
		if err != nil {
			return false
		}
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		// Balanced: sizes differ by at most one.
		min, max := len(parts[0]), len(parts[0])
		for _, p := range parts {
			if len(p) < min {
				min = len(p)
			}
			if len(p) > max {
				max = len(p)
			}
		}
		return total == len(recs) && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateTrace(b *testing.B) {
	c := DefaultTraceConfig()
	c.Records = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(c); err != nil {
			b.Fatal(err)
		}
	}
}
