package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// SaveTrace writes records as JSON Lines (one record per line), the
// interchange format used to plug a real usage trace — like the paper's
// proprietary 3M-user dataset — into the testbed experiments in place of the
// synthetic generator.
func SaveTrace(w io.Writer, recs []UsageRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("workload: save record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LoadTrace reads a JSON Lines trace written by SaveTrace (or produced by
// any external tool emitting the same schema). Records are validated and
// returned sorted by start time. Blank lines are skipped.
func LoadTrace(r io.Reader) ([]UsageRecord, error) {
	var recs []UsageRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec UsageRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if err := validateRecord(rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("workload: trace is empty")
	}
	sortRecordsByStart(recs)
	return recs, nil
}

func validateRecord(rec UsageRecord) error {
	switch {
	case rec.UserID < 0:
		return fmt.Errorf("negative user id %d", rec.UserID)
	case rec.AppID < 0:
		return fmt.Errorf("negative app id %d", rec.AppID)
	case rec.Start.IsZero():
		return fmt.Errorf("missing start time")
	case rec.DurationS < 0:
		return fmt.Errorf("negative duration %d", rec.DurationS)
	}
	return nil
}

// TraceStats summarizes a trace for inspection and experiment reports.
type TraceStats struct {
	Records       int
	DistinctUsers int
	DistinctApps  int
	Start, End    time.Time
	TotalHours    float64
}

// Summarize computes TraceStats over records.
func Summarize(recs []UsageRecord) TraceStats {
	st := TraceStats{Records: len(recs)}
	if len(recs) == 0 {
		return st
	}
	users := make(map[int64]bool)
	apps := make(map[int]bool)
	st.Start, st.End = recs[0].Start, recs[0].Start
	var secs int64
	for _, r := range recs {
		users[r.UserID] = true
		apps[r.AppID] = true
		if r.Start.Before(st.Start) {
			st.Start = r.Start
		}
		if r.Start.After(st.End) {
			st.End = r.Start
		}
		secs += int64(r.DurationS)
	}
	st.DistinctUsers = len(users)
	st.DistinctApps = len(apps)
	st.TotalHours = float64(secs) / 3600
	return st
}
