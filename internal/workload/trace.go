package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// UsageRecord is one mobile-app usage event. The paper's testbed (§4.3) uses
// a proprietary trace of app usage from 3 million anonymous users over three
// months; this package generates a synthetic equivalent whose distributional
// properties — Zipf app popularity, diurnal activity, power-law per-user
// activity — are the only ones the paper's analytics queries depend on.
type UsageRecord struct {
	UserID    int64     `json:"user"`
	AppID     int       `json:"app"`
	Start     time.Time `json:"start"`
	DurationS int       `json:"duration_s"`
}

// TraceConfig controls synthetic trace generation.
type TraceConfig struct {
	Users   int
	Apps    int
	Records int
	// ZipfS is the Zipf exponent of app popularity (>1).
	ZipfS float64
	// Start and Days bound the time window; the paper's trace covers
	// three months.
	Start time.Time
	Days  int
	Seed  int64
}

// DefaultTraceConfig returns a laptop-scale stand-in for the paper's trace:
// same shape, smaller volume (documented substitution, DESIGN.md §4).
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Users:   3000,
		Apps:    200,
		Records: 60000,
		ZipfS:   1.2,
		Start:   time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:    90,
		Seed:    1,
	}
}

// Validate reports the first configuration error, or nil.
func (c TraceConfig) Validate() error {
	switch {
	case c.Users < 1 || c.Apps < 1 || c.Records < 1:
		return fmt.Errorf("workload: trace needs ≥1 users, apps, records")
	case c.ZipfS <= 1:
		return fmt.Errorf("workload: zipf exponent %v must exceed 1", c.ZipfS)
	case c.Days < 1:
		return fmt.Errorf("workload: trace window %d days < 1", c.Days)
	}
	return nil
}

// diurnalHourWeights approximates human activity: low at night, peaks at
// midday and evening.
var diurnalHourWeights = [24]float64{
	1, 0.5, 0.3, 0.2, 0.2, 0.4, 1, 2.5, 4, 5, 5.5, 6,
	6.5, 6, 5.5, 5, 5.5, 6.5, 7.5, 8, 7, 5.5, 3.5, 2,
}

// GenerateTrace produces a deterministic synthetic usage trace sorted by
// start time.
func GenerateTrace(c TraceConfig) ([]UsageRecord, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	appZipf := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Apps-1))
	// Per-user activity is power-law-ish: squaring a uniform sample skews
	// mass toward a minority of heavy users.
	userWeight := make([]float64, c.Users)
	totalW := 0.0
	for i := range userWeight {
		w := rng.Float64()
		userWeight[i] = w * w
		totalW += userWeight[i]
	}
	userCDF := make([]float64, c.Users)
	acc := 0.0
	for i, w := range userWeight {
		acc += w / totalW
		userCDF[i] = acc
	}
	pickUser := func() int64 {
		x := rng.Float64()
		lo, hi := 0, c.Users-1
		for lo < hi {
			mid := (lo + hi) / 2
			if userCDF[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	}
	var hourCDF [24]float64
	hourTotal := 0.0
	for _, w := range diurnalHourWeights {
		hourTotal += w
	}
	accH := 0.0
	for i, w := range diurnalHourWeights {
		accH += w / hourTotal
		hourCDF[i] = accH
	}
	pickHour := func() int {
		x := rng.Float64()
		for h, cdf := range hourCDF {
			if x <= cdf {
				return h
			}
		}
		return 23
	}

	recs := make([]UsageRecord, c.Records)
	for i := range recs {
		day := rng.Intn(c.Days)
		hour := pickHour()
		minute := rng.Intn(60)
		second := rng.Intn(60)
		start := c.Start.Add(time.Duration(day)*24*time.Hour +
			time.Duration(hour)*time.Hour +
			time.Duration(minute)*time.Minute +
			time.Duration(second)*time.Second)
		// Session lengths: log-normal-ish via exp of a normal sample,
		// clamped to [5s, 2h].
		dur := int(math.Exp(rng.NormFloat64()*1.1 + 4.5))
		if dur < 5 {
			dur = 5
		}
		if dur > 7200 {
			dur = 7200
		}
		recs[i] = UsageRecord{
			UserID:    pickUser(),
			AppID:     int(appZipf.Uint64()),
			Start:     start,
			DurationS: dur,
		}
	}
	sortRecordsByStart(recs)
	return recs, nil
}

func sortRecordsByStart(recs []UsageRecord) {
	// Insertion of time.Time into sort.Slice via closure; kept local to
	// avoid exporting ordering details.
	sortSlice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
}

// sortSlice is a tiny wrapper so the generator has no direct sort import
// spread across call sites.
func sortSlice(recs []UsageRecord, less func(i, j int) bool) {
	// simple heap sort to avoid pulling in reflect-heavy helpers — records
	// counts are modest and this keeps allocation at zero.
	n := len(recs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(recs, i, n, less)
	}
	for end := n - 1; end > 0; end-- {
		recs[0], recs[end] = recs[end], recs[0]
		siftDown(recs, 0, end, less)
	}
}

func siftDown(recs []UsageRecord, root, end int, less func(i, j int) bool) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(child, child+1) {
			child++
		}
		if !less(root, child) {
			return
		}
		recs[root], recs[child] = recs[child], recs[root]
		root = child
	}
}

// PartitionTrace splits a trace into n datasets by record creation time, the
// paper's partitioning rule for the testbed: "We divide the data into a
// number of datasets according to the data creation time" (§4.3). Every
// partition is non-empty as long as len(recs) ≥ n.
func PartitionTrace(recs []UsageRecord, n int) ([][]UsageRecord, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: cannot partition into %d datasets", n)
	}
	if len(recs) < n {
		return nil, fmt.Errorf("workload: %d records cannot fill %d datasets", len(recs), n)
	}
	out := make([][]UsageRecord, n)
	per := len(recs) / n
	rem := len(recs) % n
	idx := 0
	for i := 0; i < n; i++ {
		size := per
		if i < rem {
			size++
		}
		out[i] = recs[idx : idx+size]
		idx += size
	}
	return out, nil
}
