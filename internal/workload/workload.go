// Package workload generates the problem inputs of the paper: datasets
// produced by services at data centers and cloudlets, and big-data-analytic
// queries with QoS (deadline) requirements. Parameter ranges follow §4.1 of
// the paper; all generation is deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"edgerep/internal/graph"
	"edgerep/internal/topology"
)

// DatasetID identifies a dataset; dense 0..|S|-1.
type DatasetID int

// QueryID identifies a query; dense 0..|Q|-1.
type QueryID int

// Dataset is one dataset S_n of the collection S.
type Dataset struct {
	ID DatasetID
	// SizeGB is |S_n|, the dataset volume.
	SizeGB float64
	// Origin is the node where the dataset was generated; replicas are
	// proactively copied from here.
	Origin graph.NodeID
}

// Demand is one dataset demanded by a query together with the query-specific
// selectivity α_nm: the intermediate result produced from dataset n for this
// query has size α_nm·|S_n|.
type Demand struct {
	Dataset     DatasetID
	Selectivity float64
}

// Query is one big-data-analytics query q_m.
type Query struct {
	ID QueryID
	// Home is h_m, the node where intermediate results are aggregated.
	Home graph.NodeID
	// Demands lists the datasets S(q_m) with their selectivities.
	Demands []Demand
	// ComputePerGB is r_m in GHz allocated per GB processed.
	ComputePerGB float64
	// DeadlineSec is d_qm, the QoS delay requirement.
	DeadlineSec float64
}

// DemandedVolume returns Σ_{n∈S(q)} |S_n| given the dataset collection: the
// query's contribution to the paper's objective when admitted.
func (q *Query) DemandedVolume(datasets []Dataset) float64 {
	v := 0.0
	for _, d := range q.Demands {
		v += datasets[d.Dataset].SizeGB
	}
	return v
}

// Workload bundles the generated datasets and queries.
type Workload struct {
	Datasets []Dataset
	Queries  []Query
}

// TotalDemandedVolume returns the objective value of admitting every query.
func (w *Workload) TotalDemandedVolume() float64 {
	v := 0.0
	for i := range w.Queries {
		v += w.Queries[i].DemandedVolume(w.Datasets)
	}
	return v
}

// Config controls workload generation; defaults mirror the paper (§4.1).
type Config struct {
	// NumDatasets in [5,20] in the paper. Zero means draw from that range.
	NumDatasets int
	// NumQueries in [10,100] in the paper. Zero means draw from the range.
	NumQueries int
	// MaxDatasetsPerQuery is F; each query demands [1,F] datasets.
	// The paper draws F from [1,7].
	MaxDatasetsPerQuery int
	// SizeMinGB/SizeMaxGB bound dataset sizes; [1,6] GB in the paper.
	SizeMinGB, SizeMaxGB float64
	// ComputeMin/MaxPerGB bound r_m; [0.75,1.25] GHz/GB in the paper.
	ComputeMinPerGB, ComputeMaxPerGB float64
	// SelectivityMin/Max bound α_nm ∈ (0,1].
	SelectivityMin, SelectivityMax float64
	// DeadlinePerGB makes d_qm proportional to the size of the largest
	// demanded dataset: "the QoS ... of each query depends on the size of
	// dataset demanded by the query" (§4.1). The delay of a query is the
	// maximum over its demanded datasets (§2.3), so the largest dataset
	// sets the critical path. DeadlineSlack adds headroom variability;
	// with the defaults a substantial fraction of (query, node) pairs are
	// infeasible, which is the regime where the paper's algorithms
	// separate (its throughput plots sit well below 100%).
	DeadlinePerGB                      float64
	DeadlineSlackMin, DeadlineSlackMax float64
	Seed                               int64
}

// DefaultConfig returns the paper's workload settings.
func DefaultConfig() Config {
	return Config{
		NumDatasets:         0, // draw from [5,20]
		NumQueries:          0, // draw from [10,100]
		MaxDatasetsPerQuery: 7,
		SizeMinGB:           1,
		SizeMaxGB:           6,
		ComputeMinPerGB:     0.75,
		ComputeMaxPerGB:     1.25,
		SelectivityMin:      0.05,
		SelectivityMax:      1.0,
		DeadlinePerGB:       1.0,
		DeadlineSlackMin:    0.4,
		DeadlineSlackMax:    1.2,
		Seed:                1,
	}
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumDatasets < 0 || c.NumQueries < 0:
		return fmt.Errorf("workload: negative dataset/query count")
	case c.MaxDatasetsPerQuery < 1:
		return fmt.Errorf("workload: MaxDatasetsPerQuery %d < 1", c.MaxDatasetsPerQuery)
	case c.SizeMinGB <= 0 || c.SizeMaxGB < c.SizeMinGB:
		return fmt.Errorf("workload: bad size range [%v,%v]", c.SizeMinGB, c.SizeMaxGB)
	case c.ComputeMinPerGB <= 0 || c.ComputeMaxPerGB < c.ComputeMinPerGB:
		return fmt.Errorf("workload: bad compute range [%v,%v]", c.ComputeMinPerGB, c.ComputeMaxPerGB)
	case c.SelectivityMin <= 0 || c.SelectivityMax > 1 || c.SelectivityMax < c.SelectivityMin:
		return fmt.Errorf("workload: bad selectivity range (%v,%v]", c.SelectivityMin, c.SelectivityMax)
	case c.DeadlinePerGB <= 0:
		return fmt.Errorf("workload: non-positive deadline scale %v", c.DeadlinePerGB)
	case c.DeadlineSlackMin <= 0 || c.DeadlineSlackMax < c.DeadlineSlackMin:
		return fmt.Errorf("workload: bad deadline slack range [%v,%v]", c.DeadlineSlackMin, c.DeadlineSlackMax)
	}
	return nil
}

// Generate draws a workload against the given topology. Dataset origins are
// uniform over compute nodes (services run at data centers and cloudlets,
// §2.2); query homes are uniform over compute nodes as well, since users
// reach the system through base stations attached to cloudlets.
func Generate(c Config, top *topology.Topology) (*Workload, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if top.NumCompute() == 0 {
		return nil, fmt.Errorf("workload: topology has no compute nodes")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	nd := c.NumDatasets
	if nd == 0 {
		nd = 5 + rng.Intn(16) // [5,20] per the paper
	}
	nq := c.NumQueries
	if nq == 0 {
		nq = 10 + rng.Intn(91) // [10,100] per the paper
	}

	w := &Workload{
		Datasets: make([]Dataset, nd),
		Queries:  make([]Query, nq),
	}
	for i := range w.Datasets {
		w.Datasets[i] = Dataset{
			ID:     DatasetID(i),
			SizeGB: uniform(c.SizeMinGB, c.SizeMaxGB),
			Origin: top.ComputeNodes[rng.Intn(top.NumCompute())],
		}
	}
	for i := range w.Queries {
		home := top.ComputeNodes[rng.Intn(top.NumCompute())]
		k := 1 + rng.Intn(c.MaxDatasetsPerQuery)
		if k > nd {
			k = nd
		}
		perm := rng.Perm(nd)[:k]
		demands := make([]Demand, k)
		maxSize := 0.0
		for j, dsIdx := range perm {
			demands[j] = Demand{
				Dataset:     DatasetID(dsIdx),
				Selectivity: uniform(c.SelectivityMin, c.SelectivityMax),
			}
			if s := w.Datasets[dsIdx].SizeGB; s > maxSize {
				maxSize = s
			}
		}
		w.Queries[i] = Query{
			ID:           QueryID(i),
			Home:         home,
			Demands:      demands,
			ComputePerGB: uniform(c.ComputeMinPerGB, c.ComputeMaxPerGB),
			DeadlineSec:  maxSize * c.DeadlinePerGB * uniform(c.DeadlineSlackMin, c.DeadlineSlackMax),
		}
	}
	return w, nil
}

// MustGenerate is Generate panicking on error, for known-good configs.
func MustGenerate(c Config, top *topology.Topology) *Workload {
	w, err := Generate(c, top)
	if err != nil {
		panic(err)
	}
	return w
}

// SplitSingleDataset converts a general workload into the paper's special
// case: each (query, demanded dataset) pair becomes its own single-dataset
// query, keeping home, compute rate and deadline. This is how Appro-G reuses
// Appro-S (paper Algorithm 2) and how the special-case experiments (Fig. 2)
// build their inputs.
func (w *Workload) SplitSingleDataset() *Workload {
	out := &Workload{Datasets: w.Datasets}
	for _, q := range w.Queries {
		for _, d := range q.Demands {
			out.Queries = append(out.Queries, Query{
				ID:           QueryID(len(out.Queries)),
				Home:         q.Home,
				Demands:      []Demand{d},
				ComputePerGB: q.ComputePerGB,
				DeadlineSec:  q.DeadlineSec,
			})
		}
	}
	return out
}
