package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Save writes the workload as indented JSON: the interchange format between
// edgerepgen (writer) and edgerepplace (reader).
func (w *Workload) Save(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}

// LoadWorkload reads a workload written by Save (or hand-authored in the
// same schema) and validates its internal references.
func LoadWorkload(r io.Reader) (*Workload, error) {
	var w Workload
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	if len(w.Datasets) == 0 {
		return nil, fmt.Errorf("workload: no datasets")
	}
	for i, d := range w.Datasets {
		if int(d.ID) != i {
			return nil, fmt.Errorf("workload: dataset IDs must be dense and ordered; got %d at %d", d.ID, i)
		}
		if d.SizeGB <= 0 {
			return nil, fmt.Errorf("workload: dataset %d has size %v", i, d.SizeGB)
		}
		if d.Origin < 0 {
			return nil, fmt.Errorf("workload: dataset %d has negative origin", i)
		}
	}
	for i, q := range w.Queries {
		if int(q.ID) != i {
			return nil, fmt.Errorf("workload: query IDs must be dense and ordered; got %d at %d", q.ID, i)
		}
		if len(q.Demands) == 0 {
			return nil, fmt.Errorf("workload: query %d demands nothing", i)
		}
		if q.DeadlineSec <= 0 || q.ComputePerGB <= 0 {
			return nil, fmt.Errorf("workload: query %d has deadline %v, compute %v", i, q.DeadlineSec, q.ComputePerGB)
		}
		seen := map[DatasetID]bool{}
		for _, dm := range q.Demands {
			if int(dm.Dataset) < 0 || int(dm.Dataset) >= len(w.Datasets) {
				return nil, fmt.Errorf("workload: query %d references unknown dataset %d", i, dm.Dataset)
			}
			if dm.Selectivity <= 0 || dm.Selectivity > 1 {
				return nil, fmt.Errorf("workload: query %d selectivity %v outside (0,1]", i, dm.Selectivity)
			}
			if seen[dm.Dataset] {
				return nil, fmt.Errorf("workload: query %d demands dataset %d twice", i, dm.Dataset)
			}
			seen[dm.Dataset] = true
		}
	}
	return &w, nil
}
