package workload

import (
	"math"
	"testing"

	"edgerep/internal/topology"
)

func arrivalWorkload(t testing.TB, nq int) *Workload {
	t.Helper()
	top := topology.MustGenerate(topology.DefaultConfig())
	c := DefaultConfig()
	c.NumDatasets = 8
	c.NumQueries = nq
	return MustGenerate(c, top)
}

func TestGenerateArrivalsBasics(t *testing.T) {
	w := arrivalWorkload(t, 50)
	as, err := GenerateArrivals(w, DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 50 {
		t.Fatalf("got %d arrivals, want 50", len(as))
	}
	prev := -1.0
	for i, a := range as {
		if int(a.Query) != i {
			t.Fatalf("arrival %d for query %d, want ID order", i, a.Query)
		}
		if a.AtSec <= prev {
			t.Fatalf("arrival times not strictly increasing at %d", i)
		}
		prev = a.AtSec
		if a.HoldSec <= 0 {
			t.Fatalf("arrival %d has no hold despite MeanHoldSec > 0", i)
		}
	}
}

func TestGenerateArrivalsValidation(t *testing.T) {
	w := arrivalWorkload(t, 5)
	if _, err := GenerateArrivals(w, ArrivalConfig{MeanRatePerSec: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := GenerateArrivals(w, ArrivalConfig{MeanRatePerSec: 1, MeanHoldSec: -1}); err == nil {
		t.Fatal("negative hold accepted")
	}
	if _, err := GenerateArrivals(&Workload{}, DefaultArrivalConfig()); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestHomogeneousRateApproximatesMean(t *testing.T) {
	w := arrivalWorkload(t, 100)
	// Use many queries so the empirical rate concentrates.
	big := &Workload{Datasets: w.Datasets}
	for i := 0; i < 4000; i++ {
		big.Queries = append(big.Queries, Query{ID: QueryID(i), Demands: w.Queries[0].Demands,
			ComputePerGB: 1, DeadlineSec: 1})
	}
	cfg := ArrivalConfig{MeanRatePerSec: 2.0, Seed: 3}
	as, err := GenerateArrivals(big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := as[len(as)-1].AtSec
	rate := float64(len(as)) / span
	if math.Abs(rate-2.0) > 0.2 {
		t.Fatalf("empirical rate %.3f, want ≈2.0", rate)
	}
	if as[0].HoldSec != 0 {
		t.Fatal("hold generated despite MeanHoldSec = 0")
	}
}

func TestDiurnalRateApproximatesMeanOverDays(t *testing.T) {
	w := arrivalWorkload(t, 100)
	big := &Workload{Datasets: w.Datasets}
	for i := 0; i < 6000; i++ {
		big.Queries = append(big.Queries, Query{ID: QueryID(i), Demands: w.Queries[0].Demands,
			ComputePerGB: 1, DeadlineSec: 1})
	}
	cfg := ArrivalConfig{MeanRatePerSec: 0.05, Diurnal: true, Seed: 5}
	as, err := GenerateArrivals(big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := as[len(as)-1].AtSec
	if span < 86400 {
		t.Skipf("window %.0fs shorter than a day; thinning check needs full cycles", span)
	}
	rate := float64(len(as)) / span
	if math.Abs(rate-0.05) > 0.01 {
		t.Fatalf("diurnal empirical rate %.4f, want ≈0.05", rate)
	}
	// Day hours (9-21) must carry clearly more arrivals than night (0-6).
	day, night := 0, 0
	for _, a := range as {
		h := int(a.AtSec/3600) % 24
		switch {
		case h >= 9 && h < 21:
			day++
		case h < 6:
			night++
		}
	}
	if day <= night*2 {
		t.Fatalf("diurnal shape missing: %d day vs %d night arrivals", day, night)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	w := arrivalWorkload(t, 30)
	a1, err := GenerateArrivals(w, DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := GenerateArrivals(w, DefaultArrivalConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("arrivals nondeterministic")
		}
	}
}
