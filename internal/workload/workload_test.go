package workload

import (
	"math"
	"testing"
	"testing/quick"

	"edgerep/internal/topology"
)

func testTopology(t testing.TB) *topology.Topology {
	t.Helper()
	return topology.MustGenerate(topology.DefaultConfig())
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.SizeMinGB != 1 || c.SizeMaxGB != 6 {
		t.Fatalf("size range [%v,%v], paper uses [1,6] GB", c.SizeMinGB, c.SizeMaxGB)
	}
	if c.ComputeMinPerGB != 0.75 || c.ComputeMaxPerGB != 1.25 {
		t.Fatalf("compute range [%v,%v], paper uses [0.75,1.25] GHz/GB",
			c.ComputeMinPerGB, c.ComputeMaxPerGB)
	}
	if c.MaxDatasetsPerQuery != 7 {
		t.Fatalf("F = %d, paper draws demanded-set size from [1,7]", c.MaxDatasetsPerQuery)
	}
}

func TestGenerateRangesAndCounts(t *testing.T) {
	top := testTopology(t)
	c := DefaultConfig()
	c.NumDatasets = 12
	c.NumQueries = 40
	w := MustGenerate(c, top)
	if len(w.Datasets) != 12 || len(w.Queries) != 40 {
		t.Fatalf("got %d datasets, %d queries", len(w.Datasets), len(w.Queries))
	}
	computeSet := map[int]bool{}
	for _, id := range top.ComputeNodes {
		computeSet[int(id)] = true
	}
	for _, d := range w.Datasets {
		if d.SizeGB < c.SizeMinGB || d.SizeGB > c.SizeMaxGB {
			t.Fatalf("dataset %d size %v outside [%v,%v]", d.ID, d.SizeGB, c.SizeMinGB, c.SizeMaxGB)
		}
		if !computeSet[int(d.Origin)] {
			t.Fatalf("dataset %d originates at non-compute node %d", d.ID, d.Origin)
		}
	}
	for _, q := range w.Queries {
		if len(q.Demands) < 1 || len(q.Demands) > c.MaxDatasetsPerQuery {
			t.Fatalf("query %d demands %d datasets, want [1,%d]", q.ID, len(q.Demands), c.MaxDatasetsPerQuery)
		}
		if q.ComputePerGB < c.ComputeMinPerGB || q.ComputePerGB > c.ComputeMaxPerGB {
			t.Fatalf("query %d compute %v outside range", q.ID, q.ComputePerGB)
		}
		if q.DeadlineSec <= 0 {
			t.Fatalf("query %d non-positive deadline", q.ID)
		}
		if !computeSet[int(q.Home)] {
			t.Fatalf("query %d home at non-compute node %d", q.ID, q.Home)
		}
		seen := map[DatasetID]bool{}
		for _, dm := range q.Demands {
			if dm.Selectivity <= 0 || dm.Selectivity > 1 {
				t.Fatalf("query %d selectivity %v outside (0,1]", q.ID, dm.Selectivity)
			}
			if seen[dm.Dataset] {
				t.Fatalf("query %d demands dataset %d twice", q.ID, dm.Dataset)
			}
			seen[dm.Dataset] = true
		}
	}
}

func TestGenerateDefaultDrawsPaperRanges(t *testing.T) {
	top := testTopology(t)
	for seed := int64(0); seed < 20; seed++ {
		c := DefaultConfig()
		c.Seed = seed
		w := MustGenerate(c, top)
		if len(w.Datasets) < 5 || len(w.Datasets) > 20 {
			t.Fatalf("seed %d: %d datasets outside [5,20]", seed, len(w.Datasets))
		}
		if len(w.Queries) < 10 || len(w.Queries) > 100 {
			t.Fatalf("seed %d: %d queries outside [10,100]", seed, len(w.Queries))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	top := testTopology(t)
	a := MustGenerate(DefaultConfig(), top)
	b := MustGenerate(DefaultConfig(), top)
	if len(a.Queries) != len(b.Queries) || len(a.Datasets) != len(b.Datasets) {
		t.Fatal("same seed produced different cardinalities")
	}
	for i := range a.Queries {
		if a.Queries[i].DeadlineSec != b.Queries[i].DeadlineSec {
			t.Fatalf("same seed, query %d deadlines differ", i)
		}
	}
}

func TestDeadlineScalesWithLargestDemandedDataset(t *testing.T) {
	top := testTopology(t)
	c := DefaultConfig()
	c.NumDatasets = 10
	c.NumQueries = 60
	w := MustGenerate(c, top)
	for _, q := range w.Queries {
		maxSize := 0.0
		for _, d := range q.Demands {
			if s := w.Datasets[d.Dataset].SizeGB; s > maxSize {
				maxSize = s
			}
		}
		lo := maxSize * c.DeadlinePerGB * c.DeadlineSlackMin
		hi := maxSize * c.DeadlinePerGB * c.DeadlineSlackMax
		if q.DeadlineSec < lo-1e-9 || q.DeadlineSec > hi+1e-9 {
			t.Fatalf("query %d deadline %v outside [%v,%v] for max size %v",
				q.ID, q.DeadlineSec, lo, hi, maxSize)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.NumDatasets = -1 },
		func(c *Config) { c.MaxDatasetsPerQuery = 0 },
		func(c *Config) { c.SizeMinGB = 0 },
		func(c *Config) { c.SizeMaxGB = 0.5 },
		func(c *Config) { c.ComputeMinPerGB = -1 },
		func(c *Config) { c.SelectivityMin = 0 },
		func(c *Config) { c.SelectivityMax = 1.5 },
		func(c *Config) { c.DeadlinePerGB = 0 },
		func(c *Config) { c.DeadlineSlackMin = 0 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestSplitSingleDataset(t *testing.T) {
	top := testTopology(t)
	c := DefaultConfig()
	c.NumDatasets = 8
	c.NumQueries = 25
	w := MustGenerate(c, top)
	s := w.SplitSingleDataset()
	wantQueries := 0
	for _, q := range w.Queries {
		wantQueries += len(q.Demands)
	}
	if len(s.Queries) != wantQueries {
		t.Fatalf("split produced %d queries, want %d", len(s.Queries), wantQueries)
	}
	for i, q := range s.Queries {
		if len(q.Demands) != 1 {
			t.Fatalf("split query %d demands %d datasets", i, len(q.Demands))
		}
		if int(q.ID) != i {
			t.Fatalf("split query IDs not dense: %d at %d", q.ID, i)
		}
	}
	// Total demanded volume must be preserved exactly.
	if math.Abs(s.TotalDemandedVolume()-w.TotalDemandedVolume()) > 1e-9 {
		t.Fatalf("split changed total volume: %v vs %v",
			s.TotalDemandedVolume(), w.TotalDemandedVolume())
	}
}

// Property: generation never violates its own documented invariants.
func TestGenerateInvariantsProperty(t *testing.T) {
	top := testTopology(t)
	f := func(seed int64, f8 uint8) bool {
		c := DefaultConfig()
		c.Seed = seed
		c.MaxDatasetsPerQuery = 1 + int(f8)%7
		w, err := Generate(c, top)
		if err != nil {
			return false
		}
		for _, q := range w.Queries {
			if len(q.Demands) > c.MaxDatasetsPerQuery || len(q.Demands) < 1 {
				return false
			}
			if q.DeadlineSec <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDemandedVolume(t *testing.T) {
	ds := []Dataset{{ID: 0, SizeGB: 2}, {ID: 1, SizeGB: 3.5}}
	q := Query{Demands: []Demand{{Dataset: 0, Selectivity: 1}, {Dataset: 1, Selectivity: 0.5}}}
	if v := q.DemandedVolume(ds); v != 5.5 {
		t.Fatalf("DemandedVolume = %v, want 5.5", v)
	}
}

func BenchmarkGenerateWorkload(b *testing.B) {
	top := topology.MustGenerate(topology.DefaultConfig())
	c := DefaultConfig()
	c.NumDatasets = 20
	c.NumQueries = 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(c, top); err != nil {
			b.Fatal(err)
		}
	}
}
