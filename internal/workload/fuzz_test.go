package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadTrace checks that arbitrary input never panics the loader and
// that whatever loads successfully round-trips through SaveTrace.
func FuzzLoadTrace(f *testing.F) {
	f.Add(`{"user":1,"app":2,"start":"2019-03-01T10:00:00Z","duration_s":60}`)
	f.Add(`{"user":1,"app":2,"start":"2019-03-01T10:00:00Z","duration_s":60}` + "\n" +
		`{"user":3,"app":0,"start":"2019-01-01T00:00:00Z","duration_s":5}`)
	f.Add("")
	f.Add("not json at all")
	f.Add(`{"user":-1}`)
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := LoadTrace(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Loaded traces must be valid and serializable.
		for _, r := range recs {
			if r.UserID < 0 || r.AppID < 0 || r.DurationS < 0 || r.Start.IsZero() {
				t.Fatalf("loader accepted invalid record %+v", r)
			}
		}
		var buf bytes.Buffer
		if err := SaveTrace(&buf, recs); err != nil {
			t.Fatalf("cannot save loaded trace: %v", err)
		}
		again, err := LoadTrace(&buf)
		if err != nil {
			t.Fatalf("cannot reload saved trace: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d vs %d", len(again), len(recs))
		}
	})
}
