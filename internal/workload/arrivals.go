package workload

import (
	"fmt"
	"math/rand"
)

// Arrival is one query arrival instant for the online setting.
type Arrival struct {
	Query QueryID
	AtSec float64
	// HoldSec is how long the query's allocation stays live (its
	// evaluation time); 0 means forever.
	HoldSec float64
}

// ArrivalConfig parameterizes a non-homogeneous Poisson arrival process with
// the same diurnal shape as the usage trace: queries arrive faster during
// the day than at night, matching how analysts actually issue them.
type ArrivalConfig struct {
	// MeanRatePerSec is the time-averaged arrival rate.
	MeanRatePerSec float64
	// Diurnal enables hour-of-day rate modulation (the trace's activity
	// curve); off means homogeneous Poisson.
	Diurnal bool
	// MeanHoldSec is the mean exponential hold time; 0 disables holds.
	MeanHoldSec float64
	Seed        int64
}

// DefaultArrivalConfig returns a gentle default: one query every 2 seconds
// on average with diurnal shape and 10-second holds.
func DefaultArrivalConfig() ArrivalConfig {
	return ArrivalConfig{MeanRatePerSec: 0.5, Diurnal: true, MeanHoldSec: 10, Seed: 1}
}

// Validate reports the first configuration error, or nil.
func (c ArrivalConfig) Validate() error {
	if c.MeanRatePerSec <= 0 {
		return fmt.Errorf("workload: arrival rate %v must be positive", c.MeanRatePerSec)
	}
	if c.MeanHoldSec < 0 {
		return fmt.Errorf("workload: negative hold time %v", c.MeanHoldSec)
	}
	return nil
}

// GenerateArrivals draws one arrival per query of the workload, in query-ID
// order, with strictly increasing times (thinning-based non-homogeneous
// Poisson when Diurnal is set).
func GenerateArrivals(w *Workload, c ArrivalConfig) ([]Arrival, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("workload: no queries to schedule")
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Normalize the diurnal weights to a mean of 1 so MeanRatePerSec stays
	// the time average.
	var shape [24]float64
	total := 0.0
	for _, v := range diurnalHourWeights {
		total += v
	}
	mean := total / 24
	maxRel := 0.0
	for h, v := range diurnalHourWeights {
		shape[h] = v / mean
		if shape[h] > maxRel {
			maxRel = shape[h]
		}
	}

	out := make([]Arrival, 0, len(w.Queries))
	t := 0.0
	for i := range w.Queries {
		if c.Diurnal {
			// Thinning: propose at the peak rate, accept with
			// probability shape(hour)/max.
			for {
				t += rng.ExpFloat64() / (c.MeanRatePerSec * maxRel)
				hour := int(t/3600) % 24
				if rng.Float64() <= shape[hour]/maxRel {
					break
				}
			}
		} else {
			t += rng.ExpFloat64() / c.MeanRatePerSec
		}
		a := Arrival{Query: QueryID(i), AtSec: t}
		if c.MeanHoldSec > 0 {
			a.HoldSec = rng.ExpFloat64() * c.MeanHoldSec
		}
		out = append(out, a)
	}
	return out, nil
}
