package workload

import (
	"bytes"
	"strings"
	"testing"

	"edgerep/internal/topology"
)

func TestWorkloadSaveLoadRoundTrip(t *testing.T) {
	top := topology.MustGenerate(topology.DefaultConfig())
	c := DefaultConfig()
	c.NumDatasets = 8
	c.NumQueries = 20
	w := MustGenerate(c, top)
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Datasets) != len(w.Datasets) || len(got.Queries) != len(w.Queries) {
		t.Fatal("round trip changed cardinalities")
	}
	if got.TotalDemandedVolume() != w.TotalDemandedVolume() {
		t.Fatal("round trip changed total volume")
	}
	for i := range w.Queries {
		if got.Queries[i].DeadlineSec != w.Queries[i].DeadlineSec ||
			got.Queries[i].Home != w.Queries[i].Home {
			t.Fatalf("query %d changed", i)
		}
	}
}

func TestLoadWorkloadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{",
		"no-datasets":  `{"Datasets":[],"Queries":[]}`,
		"sparse-ds":    `{"Datasets":[{"ID":3,"SizeGB":1}]}`,
		"zero-size":    `{"Datasets":[{"ID":0,"SizeGB":0}]}`,
		"neg-origin":   `{"Datasets":[{"ID":0,"SizeGB":1,"Origin":-1}]}`,
		"empty-query":  `{"Datasets":[{"ID":0,"SizeGB":1}],"Queries":[{"ID":0,"Demands":[],"ComputePerGB":1,"DeadlineSec":1}]}`,
		"bad-deadline": `{"Datasets":[{"ID":0,"SizeGB":1}],"Queries":[{"ID":0,"Demands":[{"Dataset":0,"Selectivity":0.5}],"ComputePerGB":1,"DeadlineSec":0}]}`,
		"dangling":     `{"Datasets":[{"ID":0,"SizeGB":1}],"Queries":[{"ID":0,"Demands":[{"Dataset":9,"Selectivity":0.5}],"ComputePerGB":1,"DeadlineSec":1}]}`,
		"bad-alpha":    `{"Datasets":[{"ID":0,"SizeGB":1}],"Queries":[{"ID":0,"Demands":[{"Dataset":0,"Selectivity":2}],"ComputePerGB":1,"DeadlineSec":1}]}`,
		"dup-demand":   `{"Datasets":[{"ID":0,"SizeGB":1}],"Queries":[{"ID":0,"Demands":[{"Dataset":0,"Selectivity":0.5},{"Dataset":0,"Selectivity":0.6}],"ComputePerGB":1,"DeadlineSec":1}]}`,
		"sparse-query": `{"Datasets":[{"ID":0,"SizeGB":1}],"Queries":[{"ID":4,"Demands":[{"Dataset":0,"Selectivity":0.5}],"ComputePerGB":1,"DeadlineSec":1}]}`,
	}
	for name, in := range cases {
		if _, err := LoadWorkload(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
