// WAL shipping: followers PULL from the leader. Pull keeps the leader's
// write path oblivious to replication (it only ever seals segments, which
// rotation does anyway) and makes resume trivial — the follower remembers
// the last segment it applied and asks for the next, so a restarted or
// lagging follower needs no leader-side cursor. Every pulled segment is
// re-verified against the seal's CRC before a single record is replayed.

package federation

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"edgerep/internal/journal"
	"edgerep/internal/retry"
)

// Transport is how a standby reaches its leader: a heartbeat-bearing
// manifest poll plus sealed-segment fetches. Implementations retry
// internally, so a returned error means the retries were exhausted — the
// standby counts it as a missed heartbeat and marks replication stalled
// (surfaced on its /healthz) until a sync succeeds again.
type Transport interface {
	Manifest() (Manifest, error)
	Segment(seal journal.SealInfo) ([]byte, error)
}

// LeaderTransport ships in-process from a Leader in the same address space —
// the drill's fast path and the unit tests' harness. A killed leader answers
// like a dead TCP endpoint: every call errors.
type LeaderTransport struct {
	Leader *Leader
}

// Manifest implements Transport.
func (t *LeaderTransport) Manifest() (Manifest, error) { return t.Leader.Manifest() }

// Segment implements Transport: reads the sealed segment straight from the
// leader's journal directory with full CRC verification.
func (t *LeaderTransport) Segment(seal journal.SealInfo) ([]byte, error) {
	if t.Leader.Dead() {
		return nil, fmt.Errorf("federation: leader %s is dead", t.Leader.Region())
	}
	return journal.ReadSealedSegment(t.Leader.Dir(), seal)
}

// HTTPTransport ships over the leader's /ship endpoint with retry/backoff
// under a per-call deadline budget. Transient faults (a leader mid-restart,
// a congested WAN hop) are absorbed by the retry runner; every failed
// attempt bumps the ship-retry counter via the policy's Notify hook, so
// operators see flakiness long before it exhausts a budget.
type HTTPTransport struct {
	// Base is the leader's base URL (http://host:port).
	Base string
	// Budget bounds each Manifest/Segment call end to end; 0 means 2s.
	Budget time.Duration
	// Policy shapes the retries; the zero value uses NewHTTPTransport's
	// defaults.
	Policy retry.Policy
	// Client performs the requests; nil means a 5s-timeout default.
	Client *http.Client
}

// NewHTTPTransport builds the production transport: 5 attempts under a 2s
// budget with 50ms initial backoff, every failed attempt counted on
// federation.ship_retries.
func NewHTTPTransport(base string, budget time.Duration) *HTTPTransport {
	return &HTTPTransport{
		Base:   base,
		Budget: budget,
		Policy: retry.Policy{
			Base:        50 * time.Millisecond,
			Cap:         500 * time.Millisecond,
			Multiplier:  2,
			MaxAttempts: 5,
			Notify:      func(int, error) { statShipRetries.Inc() },
		},
	}
}

func (t *HTTPTransport) budget() time.Duration {
	if t.Budget > 0 {
		return t.Budget
	}
	return 2 * time.Second
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (t *HTTPTransport) policy() retry.Policy {
	p := t.Policy
	if p.MaxAttempts == 0 && p.Base == 0 {
		p = NewHTTPTransport(t.Base, t.Budget).Policy
	}
	if p.Notify == nil {
		p.Notify = func(int, error) { statShipRetries.Inc() }
	}
	return p
}

// get fetches path under the retry budget and returns the response body.
func (t *HTTPTransport) get(path string) ([]byte, error) {
	runner := retry.Runner{Policy: t.policy()}
	var body []byte
	err := runner.Run(t.budget(), func(int, time.Duration) error {
		resp, err := t.client().Get(t.Base + path)
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return fmt.Errorf("federation: %s answered %d: %s", path, resp.StatusCode, msg)
		}
		body, err = io.ReadAll(resp.Body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}

// Manifest implements Transport.
func (t *HTTPTransport) Manifest() (Manifest, error) {
	body, err := t.get("/ship")
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return Manifest{}, fmt.Errorf("federation: decode manifest: %w", err)
	}
	return m, nil
}

// Segment implements Transport: fetches the raw sealed bytes and verifies
// length and CRC against the seal before handing them to the replayer.
func (t *HTTPTransport) Segment(seal journal.SealInfo) ([]byte, error) {
	body, err := t.get(fmt.Sprintf("/ship?seg=%d", seal.Segment))
	if err != nil {
		return nil, err
	}
	if err := journal.VerifySealedBytes(body, seal); err != nil {
		return nil, err
	}
	return body, nil
}
