// Package federation is the geo-federated control plane: N regional
// controllers, each owning a static shard of the cloudlets, each running its
// own online.Engine over its own journal, asynchronously shipping sealed WAL
// segments to warm standbys that can be promoted when the leader dies.
//
// The design leans on two properties the rest of the repo already
// guarantees. First, the engine is deterministic: a standby that replays the
// leader's journal byte stream holds exactly the leader's state, so "warm
// standby" is nothing more than a Rehydrator fed shipped segments. Second,
// shard ownership is expressed *in the journal*: a fresh leader crashes (at
// model time zero) every compute node its shard does not own, so its engine
// can never allocate foreign capacity, recovery reproduces the mask from the
// WAL with no side channel, and cross-shard capacity overcommit is
// structurally impossible — two regions' engines never price the same node.
//
// Failover is fenced by a monotonic term. The leader persists its term next
// to the journal; every admission response is stamped with the term it was
// priced under; a promoted follower serves term max(seen)+1 and the old
// term's clients are answered 409 leader-failover until they re-offer under
// the new term (server.CheckTerm). Acked decisions are preserved exactly
// once across the cut: promotion replays the dead leader's journal through
// the last durable record — the torn tail of a mid-write death is dropped,
// and a torn record is by construction one whose ack was never sent.
package federation

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/journal"
	"edgerep/internal/online"
	"edgerep/internal/placement"
	"edgerep/internal/server"
	"edgerep/internal/workload"
)

var (
	statShipSegments    = instrument.NewCounter("federation.ship_segments")
	statShipRetries     = instrument.NewCounter("federation.ship_retries")
	statFailovers       = instrument.NewCounter("federation.failovers")
	statHeartbeatMisses = instrument.NewCounter("federation.heartbeat_misses")
	gaugeReplicationLag = instrument.NewGauge("federation.replication_lag_records")
	timerShip           = instrument.NewTimer("federation.ship")
)

// Config describes one regional controller: the shared problem instance,
// which shard of it this region owns, and the engine/server/journal knobs.
// Every region in a federation must be built from the identical Instance —
// ownership is a pure function of the shared topology.
type Config struct {
	// Region is the human-readable region name ("eu-west", "r0", ...).
	Region string
	// Instance is the shared problem instance every region builds
	// identically; shard masks are carved out of it per region.
	Instance server.InstanceConfig
	// Shards is the number of regions in the federation; Shard is this
	// region's index in [0, Shards). Shards <= 1 means unfederated (no
	// mask, no forwarding).
	Shards int
	Shard  int
	// ExpectedArrivals sizes the engine's price schedule (the engine's
	// PriceBase default); every region must agree on it.
	ExpectedArrivals int
	// MaxUtilization is the admission headroom (online.Options).
	MaxUtilization float64
	// SnapshotEvery bounds replay length (online.Options).
	SnapshotEvery int
	// SegmentBytes rotates (and therefore seals and ships) WAL segments at
	// this size; 0 means the journal default of 1 MiB. Drills use small
	// segments so shipping happens continuously.
	SegmentBytes int64
	// NoSync skips per-append fsync (drills and tests).
	NoSync bool
	// EpochMaxQueries / EpochMaxWait shape the server's micro-epochs.
	EpochMaxQueries int
	EpochMaxWait    time.Duration
	// DeterministicClock serves with a constant-zero model clock so every
	// arrival's AtSec comes from the request — the selfdrive/drill mode
	// whose journals are byte-reproducible.
	DeterministicClock bool
	// NoFastPath disables the precomputed admission tables.
	NoFastPath bool
}

// OwnerOfNode maps a compute node to the shard that owns it: a static
// round-robin carve of the (ascending) node ID space. Pure and total so
// every region computes the same mask with no coordination.
func OwnerOfNode(v graph.NodeID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(v) % shards
}

// OwnerOfQuery maps a query to the shard owning its home cloudlet — the
// region whose engine must price it (everyone else's engine has the home
// node journaled as crashed).
func OwnerOfQuery(p *placement.Problem, q workload.QueryID, shards int) int {
	return OwnerOfNode(p.Queries[q].Home, shards)
}

// OwnerFunc curries OwnerOfQuery into the shape server.Router wants.
func OwnerFunc(p *placement.Problem, shards int) func(workload.QueryID) int {
	return func(q workload.QueryID) int { return OwnerOfQuery(p, q, shards) }
}

const termFile = "TERM"

// ReadTerm reads the persisted leadership term next to a journal directory;
// a missing file is term 0 (never led).
func ReadTerm(dir string) (int64, error) {
	data, err := os.ReadFile(filepath.Join(dir, termFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("federation: read term: %w", err)
	}
	term, err := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("federation: parse term %q: %w", strings.TrimSpace(string(data)), err)
	}
	return term, nil
}

// WriteTerm durably persists the leadership term next to the journal
// (temp + fsync + rename, like every other durable artifact here), so a
// restarted controller can never serve an older term than it already served.
func WriteTerm(dir string, term int64) error {
	tmp, err := os.CreateTemp(dir, "term-*.tmp")
	if err != nil {
		return fmt.Errorf("federation: write term: %w", err)
	}
	name := tmp.Name()
	if _, err := fmt.Fprintf(tmp, "%d\n", term); err != nil {
		_ = tmp.Close()
		_ = os.Remove(name)
		return fmt.Errorf("federation: write term: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(name)
		return fmt.Errorf("federation: sync term: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("federation: close term: %w", err)
	}
	if err := os.Rename(name, filepath.Join(dir, termFile)); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("federation: publish term: %w", err)
	}
	return nil
}

// Leader is a live regional controller: an admission server over a
// journaling engine whose WAL the shard's followers pull from.
type Leader struct {
	cfg  Config
	p    *placement.Problem
	jn   *journal.Journal
	srv  *server.Server
	dir  string
	dead chan struct{} // closed by Kill
}

func engineOptions(cfg Config) online.Options {
	return online.Options{
		MaxUtilization: cfg.MaxUtilization,
		SnapshotEvery:  cfg.SnapshotEvery,
		NoFastPath:     cfg.NoFastPath,
	}
}

func serverConfig(cfg Config) server.Config {
	scfg := server.Config{
		EpochMaxQueries: cfg.EpochMaxQueries,
		EpochMaxWait:    cfg.EpochMaxWait,
	}
	if cfg.DeterministicClock {
		scfg.Clock = func() float64 { return 0 }
	}
	return scfg
}

// StartLeader opens (or resumes) the region's journal in dir and returns a
// serving leader at the given term. A fresh journal is branded with the
// shard mask — every compute node the shard does not own is crashed at model
// time zero, journaled like any other crash, so recovery and standby replay
// reproduce the mask with no extra state. A non-empty journal is recovered
// instead (the mask is already in it).
func StartLeader(cfg Config, dir string, term int64) (*Leader, error) {
	if cfg.Shards > 1 && (cfg.Shard < 0 || cfg.Shard >= cfg.Shards) {
		return nil, fmt.Errorf("federation: shard %d of %d", cfg.Shard, cfg.Shards)
	}
	p, err := server.BuildInstance(cfg.Instance)
	if err != nil {
		return nil, err
	}
	st, err := journal.Load(dir)
	if err != nil {
		return nil, err
	}
	jn, err := journal.Open(dir, journal.Options{SegmentBytes: cfg.SegmentBytes, NoSync: cfg.NoSync})
	if err != nil {
		return nil, err
	}
	opt := engineOptions(cfg)
	opt.Journal = jn
	var eng *online.Engine
	if len(st.Records) > 0 || st.Snapshot != nil {
		eng, err = online.Recover(p, cfg.ExpectedArrivals, opt, st)
		if err != nil {
			return nil, err
		}
	} else {
		eng = online.NewEngine(p, cfg.ExpectedArrivals, opt)
		if cfg.Shards > 1 {
			for _, v := range p.Cloud.Topology().ComputeNodes {
				if OwnerOfNode(v, cfg.Shards) == cfg.Shard {
					continue
				}
				if _, err := eng.Crash(0, v); err != nil {
					return nil, fmt.Errorf("federation: mask node %d: %w", v, err)
				}
			}
		}
	}
	if persisted, err := ReadTerm(dir); err != nil {
		return nil, err
	} else if term < persisted {
		return nil, fmt.Errorf("federation: term %d behind persisted term %d", term, persisted)
	}
	if err := WriteTerm(dir, term); err != nil {
		return nil, err
	}
	srv := server.New(p, eng, serverConfig(cfg))
	srv.SetTerm(term)
	return &Leader{cfg: cfg, p: p, jn: jn, srv: srv, dir: dir, dead: make(chan struct{})}, nil
}

// Server returns the leader's admission server.
func (l *Leader) Server() *server.Server { return l.srv }

// Problem returns the shared instance (for routers and audits).
func (l *Leader) Problem() *placement.Problem { return l.p }

// Journal returns the leader's WAL.
func (l *Leader) Journal() *journal.Journal { return l.jn }

// Dir returns the journal directory.
func (l *Leader) Dir() string { return l.dir }

// Region returns the configured region name.
func (l *Leader) Region() string { return l.cfg.Region }

// Shard returns the shard this leader owns.
func (l *Leader) Shard() int { return l.cfg.Shard }

// Term returns the leadership term the server is fencing under.
func (l *Leader) Term() int64 { return l.srv.Term() }

// Dead reports whether Kill has run.
func (l *Leader) Dead() bool {
	select {
	case <-l.dead:
		return true
	default:
		return false
	}
}

// Manifest describes the leader's shippable state: its identity, the LSN of
// its last durable record, and every sealed (immutable, CRC-stamped)
// segment a follower may pull. The active segment is deliberately absent —
// it is still being written; promotion picks up its durable prefix straight
// from disk.
type Manifest struct {
	Region   string             `json:"region"`
	Shard    int                `json:"shard"`
	Term     int64              `json:"term"`
	LSN      int64              `json:"lsn"`
	Segments []journal.SealInfo `json:"segments"`
}

// Manifest returns the current shipping manifest, or an error once the
// leader has been killed (the in-process analogue of connection refused).
func (l *Leader) Manifest() (Manifest, error) {
	if l.Dead() {
		return Manifest{}, fmt.Errorf("federation: leader %s is dead", l.cfg.Region)
	}
	return Manifest{
		Region:   l.cfg.Region,
		Shard:    l.cfg.Shard,
		Term:     l.srv.Term(),
		LSN:      l.jn.LSN(),
		Segments: l.jn.SealedSegments(),
	}, nil
}

// Kill is the drill's SIGKILL: the WAL tail is torn mid-record (the
// signature crash-mid-write artifact) and the leader stops answering
// manifests. Nothing is drained — in-flight state is abandoned exactly as a
// kill -9 would abandon it.
func (l *Leader) Kill() error {
	select {
	case <-l.dead:
		return nil
	default:
	}
	close(l.dead)
	return l.jn.TearTail([]byte(`{"kind":"offer","query":0}`))
}

// Drain gracefully stops the admission pipeline and snapshots the engine —
// the clean-shutdown path (never used by the chaos drill's victim).
func (l *Leader) Drain() error { return l.srv.Drain() }
