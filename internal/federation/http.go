// HTTP binding of the federation plane. The leader mounts /ship (manifest
// and sealed-segment pulls) and /federation (role/term/lag status) behind
// the admission server's mux via server.Handler's fallback chain, so one
// port serves admission, shipping, and status. A follower daemon serves its
// own small mux: /federation, /healthz (replication-stalled aware), and 503
// on /admit until promotion.

package federation

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"edgerep/internal/journal"
)

// sealBytesHeader and sealCRCHeader let a puller double-check a segment
// response against the manifest entry it asked for without re-reading the
// manifest.
const (
	sealBytesHeader = "X-Edgerep-Seal-Bytes"
	sealCRCHeader   = "X-Edgerep-Seal-CRC"
)

// LeaderStatus is the leader's /federation payload.
type LeaderStatus struct {
	Role       string `json:"role"`
	Region     string `json:"region"`
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
	Term       int64  `json:"term"`
	LSN        int64  `json:"lsn"`
	SealedSegs int    `json:"sealed_segments"`
}

// Handler returns the leader's federation routes (/ship, /federation), with
// unknown paths delegated to fallback — pass ops.Handler() (or nil) and hang
// the whole chain off server.Handler.
func (l *Leader) Handler(fallback http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ship", l.shipHandler)
	mux.HandleFunc("/federation", l.statusHandler)
	if fallback != nil {
		mux.Handle("/", fallback)
	}
	return mux
}

// shipHandler serves GET /ship (the manifest — also the heartbeat) and
// GET /ship?seg=N (the raw bytes of sealed segment N, CRC-checked against
// its seal before a byte leaves the process).
func (l *Leader) shipHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if l.Dead() {
		http.Error(w, "leader killed", http.StatusServiceUnavailable)
		return
	}
	segParam := r.URL.Query().Get("seg")
	if segParam == "" {
		m, err := l.Manifest()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.Marshal(m)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return
		}
		return
	}
	idx, err := strconv.Atoi(segParam)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad seg %q", segParam), http.StatusBadRequest)
		return
	}
	seal, ok := l.sealFor(idx)
	if !ok {
		http.Error(w, fmt.Sprintf("segment %d not sealed", idx), http.StatusNotFound)
		return
	}
	data, err := journal.ReadSealedSegment(l.dir, seal)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(sealBytesHeader, strconv.FormatInt(seal.Bytes, 10))
	w.Header().Set(sealCRCHeader, strconv.FormatUint(uint64(seal.CRC), 10))
	if _, err := w.Write(data); err != nil {
		return
	}
}

// sealFor finds the seal for segment idx in the journal's sealed list.
func (l *Leader) sealFor(idx int) (journal.SealInfo, bool) {
	for _, seal := range l.jn.SealedSegments() {
		if seal.Segment == idx {
			return seal, true
		}
	}
	return journal.SealInfo{}, false
}

// statusHandler serves the leader's /federation status.
func (l *Leader) statusHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := LeaderStatus{
		Role:       "leader",
		Region:     l.cfg.Region,
		Shard:      l.cfg.Shard,
		Shards:     l.cfg.Shards,
		Term:       l.srv.Term(),
		LSN:        l.jn.LSN(),
		SealedSegs: len(l.jn.SealedSegments()),
	}
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return
	}
}

// FollowerHandler returns the standby daemon's route table: /federation
// (replication status), /healthz (503 replication-stalled when ship retries
// are exhausted), and a /admit that answers 503 — a follower never prices,
// clients must talk to the leader until promotion swaps the handler.
func (s *Standby) FollowerHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.HealthzHandler)
	mux.HandleFunc("/admit", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "follower: not serving admissions", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/federation", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(s.Status(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return
		}
	})
	return mux
}
