package federation

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestDrillEndToEnd runs the full 3-region kill-the-leader drill once and
// checks the report's hard guarantees: zero acked decisions lost (the drill
// errors internally otherwise), the term advanced, the stale-term probe was
// fenced, segments actually shipped before the kill, and the killed shard's
// ack stream resumed within the promotion budget.
func TestDrillEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drill spins real listeners")
	}
	dir := t.TempDir()
	rep, err := RunDrill(DrillConfig{
		BaseDir:  dir,
		Count:    600,
		Seed:     17,
		TraceOut: filepath.Join(dir, "trace.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offers != 600 || rep.Acked != 600 {
		t.Fatalf("offers=%d acked=%d, want 600/600 — decisions lost", rep.Offers, rep.Acked)
	}
	if rep.JournalOffers != rep.Acked {
		t.Fatalf("journals hold %d offers for %d acks", rep.JournalOffers, rep.Acked)
	}
	if rep.Admitted+rep.Rejected != rep.Acked {
		t.Fatalf("admitted %d + rejected %d != acked %d", rep.Admitted, rep.Rejected, rep.Acked)
	}
	if rep.NewTerm != rep.OldTerm+1 {
		t.Fatalf("terms %d -> %d, want +1", rep.OldTerm, rep.NewTerm)
	}
	if rep.Fenced == 0 {
		t.Fatal("no stale-term offer was fenced")
	}
	if rep.Reoffered == 0 {
		t.Fatal("no offer went pending across the failover — kill happened too gently")
	}
	if rep.ShippedSegments == 0 {
		t.Fatal("standby shipped no segments before the kill")
	}
	if rep.PromotionGapModelSec <= 0 || rep.PromotionGapModelSec >= 2.0 {
		t.Fatalf("promotion gap %.4f model-sec, want (0, 2)", rep.PromotionGapModelSec)
	}
	if rep.TraceEvents == 0 {
		t.Fatal("verification replay emitted no trace events")
	}
	if data, err := os.ReadFile(filepath.Join(dir, "trace.jsonl")); err != nil || len(data) == 0 {
		t.Fatalf("trace artifact missing or empty: %v", err)
	}
}

// walBytes concatenates every WAL artifact (segments, seals, snapshots,
// TERM) under dir in name order — the byte-identity fingerprint of a drill.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	var names []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			names = append(names, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		rel, err := filepath.Rel(dir, name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString(rel)
		buf.WriteByte(0)
		buf.Write(data)
	}
	return buf.Bytes()
}

// TestDrillDeterministicAcrossKillEpochs is the satellite-3 regression:
// SIGKILL the leader at 10 seeded random offer indices; for each, run the
// drill twice and require the surviving decision stream (the verification
// trace) and every journal byte — old leader, survivors, promoted leader —
// to be identical across the two runs.
func TestDrillDeterministicAcrossKillEpochs(t *testing.T) {
	if testing.Short() {
		t.Skip("20 drills spin real listeners")
	}
	rng := rand.New(rand.NewSource(41))
	const count = 240
	for trial := 0; trial < 10; trial++ {
		killAt := 40 + rng.Intn(count-80) // keep room to ship before and ack after
		var prints [2][]byte
		var traces [2][]byte
		for run := 0; run < 2; run++ {
			dir := t.TempDir()
			traceOut := filepath.Join(dir, "trace.jsonl")
			rep, err := RunDrill(DrillConfig{
				Regions:   2,
				BaseDir:   dir,
				Count:     count,
				Seed:      29,
				KillAfter: killAt,
				SyncEvery: 10,
				TraceOut:  traceOut,
			})
			if err != nil {
				t.Fatalf("trial %d (kill@%d) run %d: %v", trial, killAt, run, err)
			}
			if rep.Acked != count {
				t.Fatalf("trial %d run %d acked %d of %d", trial, run, rep.Acked, count)
			}
			tr, err := os.ReadFile(traceOut)
			if err != nil {
				t.Fatal(err)
			}
			traces[run] = tr
			// Fingerprint only the journals (remove the trace first so the
			// artifact does not fingerprint itself).
			if err := os.Remove(traceOut); err != nil {
				t.Fatal(err)
			}
			prints[run] = walBytes(t, dir)
		}
		if !bytes.Equal(traces[0], traces[1]) {
			t.Fatalf("trial %d (kill@%d): verification traces differ across runs", trial, killAt)
		}
		if !bytes.Equal(prints[0], prints[1]) {
			t.Fatalf("trial %d (kill@%d): journal bytes differ across runs", trial, killAt)
		}
	}
}
