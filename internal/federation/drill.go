// Kill-the-leader chaos drill: stands up an N-region federation on real
// listeners, routes ONE deterministic arrival stream across the regions
// round-robin (so cross-shard forwarding is always exercised), SIGKILLs the
// leader of one shard mid-load (torn WAL tail, dead listener), lets the warm
// standby detect the loss by missed heartbeats, promote, and fence the old
// term — then audits the whole thing: every 200-acked decision appears in
// exactly one journal record across the old and new leader, the merged
// history replays divergence-free (invariant.CheckFailover), and the
// replayed trace passes invariant.CheckTrace. The drill is deterministic end
// to end (single submitter, constant-zero server clocks, explicit model
// times, cadences keyed to offer indices), so ci.sh runs it twice and
// compares journal and trace bytes.

package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"edgerep/internal/instrument"
	"edgerep/internal/invariant"
	"edgerep/internal/journal"
	"edgerep/internal/online"
	"edgerep/internal/placement"
	"edgerep/internal/retry"
	"edgerep/internal/server"
	"edgerep/internal/workload"
)

// DrillConfig parameterizes RunDrill. The zero value is filled with
// defaults sized for a CI gate (3 regions, 600 offers, kill at half-load).
type DrillConfig struct {
	// Regions is the federation size; 0 means 3.
	Regions int
	// Instance is the shared problem instance; zero means the server
	// default instance.
	Instance server.InstanceConfig
	// Count is the total offer count; 0 means 600. Seed drives the stream.
	Count int
	Seed  int64
	// BaseDir holds every region's journal directory (r0, r1, ..., plus
	// r<K>-promoted for the failed-over shard).
	BaseDir string
	// KillShard is the shard whose leader dies; KillAfter is the offer
	// index at which it dies (0 means Count/2).
	KillShard int
	KillAfter int
	// SyncEvery is the standby's heartbeat cadence in offer indices; 0
	// means 20. FailAfter is the consecutive missed heartbeats that trigger
	// promotion; 0 means 3.
	SyncEvery int
	FailAfter int
	// SegmentBytes keeps WAL segments small so sealing and shipping happen
	// continuously; 0 means 4096.
	SegmentBytes int64
	// ModelRatePerSec / MeanHoldSec shape the arrival stream (server
	// defaults when zero).
	ModelRatePerSec float64
	MeanHoldSec     float64
	// TraceOut, when non-empty, writes the post-drill verification replay
	// as a JSONL trace (the byte-identity artifact ci.sh compares).
	TraceOut string
	// NoFastPath disables the precomputed admission tables in every engine.
	NoFastPath bool
}

func (d DrillConfig) withDefaults() DrillConfig {
	if d.Regions <= 0 {
		d.Regions = 3
	}
	if d.Instance == (server.InstanceConfig{}) {
		d.Instance = server.DefaultInstance()
	}
	if d.Count <= 0 {
		d.Count = 600
	}
	if d.KillAfter <= 0 {
		d.KillAfter = d.Count / 2
	}
	if d.SyncEvery <= 0 {
		d.SyncEvery = 20
	}
	if d.FailAfter <= 0 {
		d.FailAfter = 3
	}
	if d.SegmentBytes <= 0 {
		d.SegmentBytes = 4096
	}
	return d
}

func (d DrillConfig) regionConfig(shard int) Config {
	return Config{
		Region:             fmt.Sprintf("r%d", shard),
		Instance:           d.Instance,
		Shards:             d.Regions,
		Shard:              shard,
		ExpectedArrivals:   d.Count,
		SegmentBytes:       d.SegmentBytes,
		NoSync:             true,
		DeterministicClock: true,
		NoFastPath:         d.NoFastPath,
	}
}

// DrillReport is RunDrill's outcome. Wall-clock fields vary run to run; the
// decision counts, terms, indices, and model times are deterministic.
type DrillReport struct {
	Regions  int `json:"regions"`
	Offers   int `json:"offers"`
	Acked    int `json:"acked"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// Reoffered counts offers that went unacked while the killed shard was
	// leaderless and were re-offered after promotion.
	Reoffered int `json:"reoffered"`
	// Fenced counts 409 leader-failover answers observed (the deliberate
	// stale-term probe plus any organic stale re-offers).
	Fenced       int   `json:"fenced"`
	KillShard    int   `json:"kill_shard"`
	KillIndex    int   `json:"kill_index"`
	PromoteIndex int   `json:"promote_index"`
	OldTerm      int64 `json:"old_term"`
	NewTerm      int64 `json:"new_term"`
	// FailoverWallNs is kill→serving-again in wall time.
	FailoverWallNs int64 `json:"failover_wall_ns"`
	// PromotionGapModelSec is the killed shard's ack gap in model time:
	// first post-promotion ack minus last pre-kill ack.
	PromotionGapModelSec float64 `json:"promotion_gap_model_sec"`
	// SteadyLagRecords is the replication lag (leader LSN minus applied
	// LSN) at the last successful pre-kill sync.
	SteadyLagRecords int64 `json:"steady_lag_records"`
	// ShippedSegments is how many sealed segments the standby replayed
	// before the kill.
	ShippedSegments int `json:"shipped_segments"`
	// JournalOffers is the total offer-record count across every journal —
	// the exactly-once audit requires it to equal Acked.
	JournalOffers int `json:"journal_offers"`
	// TraceEvents counts the verification replay's emitted events.
	TraceEvents int `json:"trace_events"`
}

// ackRec identifies one acked decision for the exactly-once audit: the
// (query, effective model time) pair is the decision's identity in both the
// response stream and the journal.
type ackRec struct {
	Query int64
	At    float64
}

func sortAcks(a []ackRec) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].At != a[j].At {
			return a[i].At < a[j].At
		}
		return a[i].Query < a[j].Query
	})
}

// memSink collects trace events in memory for the verification replay.
type memSink struct {
	events []instrument.TraceEvent
}

func (m *memSink) Emit(ev *instrument.TraceEvent) { m.events = append(m.events, *ev) }

// RunDrill executes the drill and the full post-mortem audit, returning an
// error on ANY invariant breach — a lost ack, a duplicated journal record, a
// divergent merged replay, a trace violation, or a fencing failure.
func RunDrill(d DrillConfig) (*DrillReport, error) {
	d = d.withDefaults()
	R := d.Regions
	if d.KillShard < 0 || d.KillShard >= R {
		return nil, fmt.Errorf("federation: kill shard %d of %d", d.KillShard, R)
	}
	if d.BaseDir == "" {
		return nil, fmt.Errorf("federation: drill needs a base directory")
	}
	rep := &DrillReport{Regions: R, KillShard: d.KillShard, KillIndex: d.KillAfter}

	client := &http.Client{Timeout: 10 * time.Second}
	dirs := make([]string, R)
	leaders := make([]*Leader, R)
	addrs := make([]string, R)
	shutdowns := make([]func() error, R)
	for r := 0; r < R; r++ {
		dirs[r] = filepath.Join(d.BaseDir, fmt.Sprintf("r%d", r))
		if err := os.MkdirAll(dirs[r], 0o755); err != nil {
			return nil, fmt.Errorf("federation: drill dir: %w", err)
		}
		l, err := StartLeader(d.regionConfig(r), dirs[r], 1)
		if err != nil {
			return nil, err
		}
		leaders[r] = l
		addr, shutdown, err := server.Serve("127.0.0.1:0", l.Server().Handler(l.Handler(nil)))
		if err != nil {
			return nil, err
		}
		addrs[r] = "http://" + addr
		shutdowns[r] = shutdown
	}
	defer func() {
		for r := 0; r < R; r++ {
			if shutdowns[r] != nil {
				_ = shutdowns[r]()
			}
		}
	}()
	owner := OwnerFunc(leaders[0].Problem(), R)
	installRouters := func() {
		for r := 0; r < R; r++ {
			if leaders[r].Dead() {
				continue
			}
			peers := make(map[int]string, R)
			for s := 0; s < R; s++ {
				peers[s] = addrs[s]
			}
			leaders[r].Server().SetRouter(&server.Router{
				Self:   r,
				Owner:  OwnerFunc(leaders[r].Problem(), R),
				Peers:  peers,
				Client: client,
			})
		}
	}
	installRouters()

	standby, err := NewStandby(d.regionConfig(d.KillShard), &HTTPTransport{
		Base:   addrs[d.KillShard],
		Budget: 400 * time.Millisecond,
		Policy: retry.Policy{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Multiplier: 2, MaxAttempts: 3},
		Client: client,
	})
	if err != nil {
		return nil, err
	}

	terms := make([]int64, R)
	for r := range terms {
		terms[r] = 1
	}
	rep.OldTerm = 1
	promotedDir := dirs[d.KillShard] + "-promoted"

	// post offers req at region entry under entry's believed term. A 409
	// teaches us the new term and retries once; a transport error or
	// gateway failure returns acked=false (the offer goes pending).
	post := func(entry int, req server.AdmitRequest) (server.AdmitResponse, bool, error) {
		for attempt := 0; attempt < 2; attempt++ {
			req.Term = terms[entry]
			body, err := json.Marshal(req)
			if err != nil {
				return server.AdmitResponse{}, false, err
			}
			httpResp, err := client.Post(addrs[entry]+"/admit", "application/json", bytes.NewReader(body))
			if err != nil {
				return server.AdmitResponse{}, false, nil
			}
			data, err := io.ReadAll(httpResp.Body)
			_ = httpResp.Body.Close()
			if err != nil {
				return server.AdmitResponse{}, false, err
			}
			switch httpResp.StatusCode {
			case http.StatusOK:
				var resp server.AdmitResponse
				if err := json.Unmarshal(data, &resp); err != nil {
					return server.AdmitResponse{}, false, fmt.Errorf("federation: decode ack: %w", err)
				}
				return resp, true, nil
			case http.StatusConflict:
				var resp server.AdmitResponse
				if err := json.Unmarshal(data, &resp); err != nil {
					return server.AdmitResponse{}, false, fmt.Errorf("federation: decode fence: %w", err)
				}
				if resp.Reason != instrument.ReasonLeaderFailover {
					return server.AdmitResponse{}, false, fmt.Errorf("federation: 409 with reason %q", resp.Reason)
				}
				rep.Fenced++
				terms[entry] = resp.Term
				continue
			default:
				return server.AdmitResponse{}, false, nil
			}
		}
		return server.AdmitResponse{}, false, fmt.Errorf("federation: still fenced after term refresh at region %d", entry)
	}

	ackedBy := make([][]ackRec, R)
	var pendingReqs []server.AdmitRequest
	var lastAckedOld, firstAckedNew float64
	var killWall time.Time
	killed, promoted := false, false
	record := func(req server.AdmitRequest, resp server.AdmitResponse) {
		sh := owner(req.Query)
		ackedBy[sh] = append(ackedBy[sh], ackRec{Query: int64(resp.Query), At: resp.AtSec})
		rep.Acked++
		if resp.Admitted {
			rep.Admitted++
		} else {
			rep.Rejected++
		}
		if sh == d.KillShard {
			if !killed {
				lastAckedOld = resp.AtSec
			} else if promoted && firstAckedNew == 0 {
				firstAckedNew = resp.AtSec
			}
		}
	}

	promoteNow := func(idx int) error {
		nl, err := standby.Promote(dirs[d.KillShard], promotedDir)
		if err != nil {
			return err
		}
		addr, shutdown, err := server.Serve("127.0.0.1:0", nl.Server().Handler(nl.Handler(nil)))
		if err != nil {
			return err
		}
		leaders[d.KillShard] = nl
		addrs[d.KillShard] = "http://" + addr
		shutdowns[d.KillShard] = shutdown
		installRouters()
		promoted = true
		rep.PromoteIndex = idx
		rep.NewTerm = nl.Term()
		rep.FailoverWallNs = time.Since(killWall).Nanoseconds()

		// Deliberate stale-term probe: an in-flight offer of the dead
		// leader's era must be fenced, not priced — 409, leader-failover,
		// nothing journaled.
		probe := server.AdmitRequest{Query: firstOwnedQuery(leaders[d.KillShard].Problem(), d.KillShard, R), Term: rep.OldTerm}
		body, err := json.Marshal(probe)
		if err != nil {
			return err
		}
		httpResp, err := client.Post(addrs[d.KillShard]+"/admit", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("federation: stale-term probe: %w", err)
		}
		data, err := io.ReadAll(httpResp.Body)
		_ = httpResp.Body.Close()
		if err != nil {
			return err
		}
		if httpResp.StatusCode != http.StatusConflict {
			return fmt.Errorf("federation: stale-term probe answered %d, want 409", httpResp.StatusCode)
		}
		var fence server.AdmitResponse
		if err := json.Unmarshal(data, &fence); err != nil {
			return err
		}
		if fence.Reason != instrument.ReasonLeaderFailover || fence.Term != rep.NewTerm {
			return fmt.Errorf("federation: stale-term probe fenced with reason %q term %d, want %q term %d",
				fence.Reason, fence.Term, instrument.ReasonLeaderFailover, rep.NewTerm)
		}
		rep.Fenced++
		terms[d.KillShard] = rep.NewTerm

		// Re-offer everything that went unacked while the shard was
		// leaderless, in original order, directly at the new leader.
		for _, pr := range pendingReqs {
			resp, acked, err := post(d.KillShard, pr)
			if err != nil {
				return err
			}
			if !acked {
				return fmt.Errorf("federation: re-offer of query %d unacked after promotion", pr.Query)
			}
			record(pr, resp)
			rep.Reoffered++
		}
		pendingReqs = nil
		return nil
	}

	arrivals := server.Arrivals(len(leaders[0].Problem().Queries), server.DriveConfig{
		Count:           d.Count,
		Seed:            d.Seed,
		ModelRatePerSec: d.ModelRatePerSec,
		MeanHoldSec:     d.MeanHoldSec,
	})
	for i, req := range arrivals {
		if !killed && i == d.KillAfter {
			killed = true
			killWall = time.Now()
			if err := leaders[d.KillShard].Kill(); err != nil {
				return nil, err
			}
			_ = shutdowns[d.KillShard]()
			shutdowns[d.KillShard] = nil
		}
		if !promoted && i > 0 && i%d.SyncEvery == 0 {
			if err := standby.SyncOnce(); err != nil {
				if !killed {
					return nil, err
				}
				if standby.Misses() >= d.FailAfter {
					if err := promoteNow(i); err != nil {
						return nil, err
					}
				}
			} else {
				rep.SteadyLagRecords = standby.Lag()
				rep.ShippedSegments = standby.Status().SyncedSegs
			}
		}
		rep.Offers++
		resp, acked, err := post(i%R, req)
		if err != nil {
			return nil, err
		}
		if acked {
			record(req, resp)
		} else {
			pendingReqs = append(pendingReqs, req)
		}
	}
	// The stream may end while the shard is still leaderless: keep the
	// heartbeat loop going until the standby notices and promotes.
	for killed && !promoted {
		if err := standby.SyncOnce(); err != nil && standby.Misses() >= d.FailAfter {
			if err := promoteNow(d.Count); err != nil {
				return nil, err
			}
		}
	}
	if firstAckedNew > 0 {
		rep.PromotionGapModelSec = firstAckedNew - lastAckedOld
	}

	// Graceful drain of every surviving server, then the audit.
	for r := 0; r < R; r++ {
		if leaders[r].Dead() {
			continue
		}
		if err := leaders[r].Drain(); err != nil {
			return nil, err
		}
	}
	live := leaders[d.KillShard].Server().StateDump()
	for r := 0; r < R; r++ {
		recs, err := regionRecords(dirs, promotedDir, r, d.KillShard)
		if err != nil {
			return nil, err
		}
		offers, err := journalOffers(recs)
		if err != nil {
			return nil, err
		}
		rep.JournalOffers += len(offers)
		want := append([]ackRec(nil), ackedBy[r]...)
		sortAcks(offers)
		sortAcks(want)
		if len(offers) != len(want) {
			return nil, fmt.Errorf("federation: shard %d journals %d offers, clients hold %d acks — exactly-once broken",
				r, len(offers), len(want))
		}
		for k := range offers {
			if offers[k] != want[k] {
				return nil, fmt.Errorf("federation: shard %d decision %d: journal has %+v, acks have %+v",
					r, k, offers[k], want[k])
			}
		}
	}
	if err := invariant.CheckFailover(leaders[d.KillShard].Problem(), d.Count,
		engineOptions(d.regionConfig(d.KillShard)), dirs[d.KillShard], promotedDir, live); err != nil {
		return nil, err
	}

	// Verification replay: single-threaded, fixed region order, trace sink
	// attached only now — the byte-reproducible artifact.
	events, err := d.replayTrace(dirs, promotedDir)
	if err != nil {
		return nil, err
	}
	rep.TraceEvents = len(events)
	return rep, nil
}

// firstOwnedQuery returns the lowest query ID the shard owns (the drill's
// stale-term probe needs one that would otherwise be priced locally).
func firstOwnedQuery(p *placement.Problem, shard, shards int) workload.QueryID {
	for q := range p.Queries {
		if OwnerOfQuery(p, workload.QueryID(q), shards) == shard {
			return workload.QueryID(q)
		}
	}
	return 0
}

// regionRecords loads shard r's full durable record stream: one directory
// for a survivor, old ++ promoted for the killed shard (Load drops the torn
// tail of the kill, exactly as recovery would).
func regionRecords(dirs []string, promotedDir string, r, killShard int) ([][]byte, error) {
	st, err := journal.Load(dirs[r])
	if err != nil {
		return nil, err
	}
	recs := st.Records
	if r == killShard {
		newSt, err := journal.Load(promotedDir)
		if err != nil {
			return nil, err
		}
		merged := make([][]byte, 0, len(recs)+len(newSt.Records))
		merged = append(merged, recs...)
		merged = append(merged, newSt.Records...)
		recs = merged
	}
	return recs, nil
}

// journalOffers extracts the (query, at) identity of every offer record.
func journalOffers(recs [][]byte) ([]ackRec, error) {
	var out []ackRec
	for _, raw := range recs {
		var rec online.JournalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("federation: decode journal record: %w", err)
		}
		if rec.Kind == "offer" {
			out = append(out, ackRec{Query: rec.Query, At: rec.At})
		}
	}
	return out, nil
}

// replayTrace replays every region's durable history through a fresh engine
// with the trace sink attached and checks the trace against the
// first-principles checker. Regions replay in shard order with the trace
// counters reset first, so two identical drills produce byte-identical
// traces.
func (d DrillConfig) replayTrace(dirs []string, promotedDir string) ([]instrument.TraceEvent, error) {
	instrument.ResetTrace()
	sink := &memSink{}
	instrument.SetTraceSink(sink)
	defer instrument.ResetTrace()
	var all []instrument.TraceEvent
	for r := 0; r < d.Regions; r++ {
		recs, err := regionRecords(dirs, promotedDir, r, d.KillShard)
		if err != nil {
			return nil, err
		}
		cfg := d.regionConfig(r)
		p, err := server.BuildInstance(cfg.Instance)
		if err != nil {
			return nil, err
		}
		sink.events = sink.events[:0]
		eng, err := online.Recover(p, cfg.ExpectedArrivals, engineOptions(cfg), &journal.State{Records: recs})
		if err != nil {
			return nil, fmt.Errorf("federation: verification replay of shard %d: %w", r, err)
		}
		eng.EmitEnd()
		if vs := invariant.CheckTrace(p, sink.events, invariant.TraceOptions{Online: true}); len(vs) != 0 {
			return nil, fmt.Errorf("federation: shard %d trace violations: %v", r, vs)
		}
		all = append(all, sink.events...)
	}
	if d.TraceOut != "" {
		f, err := os.Create(d.TraceOut)
		if err != nil {
			return nil, err
		}
		out := instrument.NewJSONLSink(f)
		for i := range all {
			out.Emit(&all[i])
		}
		if err := out.Close(); err != nil {
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return all, nil
}
