// The follower half of the control plane: a Standby pulls sealed segments
// from its leader on a heartbeat cadence, replays them into a warm engine,
// and — when the leader stops answering — finishes replay from the dead
// leader's journal directory, bumps the term, and comes up as the new
// leader. The manifest poll IS the heartbeat: a leader that can describe its
// WAL is alive, and one that can't for FailAfter consecutive polls is not.

package federation

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"edgerep/internal/instrument"
	"edgerep/internal/journal"
	"edgerep/internal/online"
	"edgerep/internal/placement"
	"edgerep/internal/server"
)

// ErrLeaderLost is wrapped by Follow when the leader has missed enough
// consecutive heartbeats that the standby should promote.
var ErrLeaderLost = errors.New("federation: leader lost")

// Standby is a warm replica of one shard's leader: a Rehydrator fed shipped
// WAL segments. Safe for concurrent use — the sync loop and the status/
// health endpoints serialize on one mutex.
type Standby struct {
	cfg Config
	p   *placement.Problem

	mu         sync.Mutex
	tr         Transport
	reh        *online.Rehydrator
	lastSeg    int   // highest sealed segment applied
	leaderTerm int64 // from the last good manifest
	leaderLSN  int64
	misses     int  // consecutive failed manifest polls
	stalled    bool // last sync exhausted its retries
	promoted   bool
}

// NewStandby builds a follower for cfg's shard, replicating via tr. The
// standby starts empty (LSN 0) and catches up from the first manifest.
func NewStandby(cfg Config, tr Transport) (*Standby, error) {
	p, err := server.BuildInstance(cfg.Instance)
	if err != nil {
		return nil, err
	}
	reh, err := online.NewRehydrator(p, cfg.ExpectedArrivals, engineOptions(cfg), &journal.State{})
	if err != nil {
		return nil, err
	}
	return &Standby{cfg: cfg, p: p, tr: tr, reh: reh}, nil
}

// SetTransport repoints the standby at a different leader endpoint (an
// operator moving a follower after a network change).
func (s *Standby) SetTransport(tr Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = tr
}

// SyncOnce performs one heartbeat: poll the manifest, pull and replay every
// newly sealed segment in order, update the replication-lag gauge. A
// transport error (retries already exhausted inside the transport) counts a
// missed heartbeat and flips the stalled flag; any successful poll clears
// both.
func (s *Standby) SyncOnce() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return fmt.Errorf("federation: standby already promoted")
	}
	m, err := s.tr.Manifest()
	if err != nil {
		s.misses++
		s.stalled = true
		statHeartbeatMisses.Inc()
		return fmt.Errorf("federation: heartbeat %d missed: %w", s.misses, err)
	}
	s.misses = 0
	s.stalled = false
	s.leaderTerm = m.Term
	s.leaderLSN = m.LSN
	for _, seal := range m.Segments {
		if seal.Segment <= s.lastSeg {
			continue
		}
		if seal.Segment != s.lastSeg+1 {
			return fmt.Errorf("federation: manifest skips from segment %d to %d", s.lastSeg, seal.Segment)
		}
		start := time.Now()
		data, err := s.tr.Segment(seal)
		if err != nil {
			s.stalled = true
			return fmt.Errorf("federation: ship segment %d: %w", seal.Segment, err)
		}
		recs, consumed, err := journal.DecodeSegment(data)
		if err != nil || consumed != len(data) {
			return fmt.Errorf("federation: sealed segment %d undecodable (consumed %d of %d): %w",
				seal.Segment, consumed, len(data), err)
		}
		for _, rec := range recs {
			if err := s.reh.Apply(rec); err != nil {
				return fmt.Errorf("federation: replay segment %d: %w", seal.Segment, err)
			}
		}
		s.lastSeg = seal.Segment
		statShipSegments.Inc()
		timerShip.Observe(time.Since(start))
	}
	gaugeReplicationLag.Set(float64(s.leaderLSN - s.reh.LSN()))
	return nil
}

// Follow polls on the given cadence until stop closes or the leader misses
// failAfter consecutive heartbeats, in which case it returns an error
// wrapping ErrLeaderLost — the daemon's cue to Promote. Replay errors
// (divergence, corruption) abort immediately: promoting a bad replica is
// worse than not promoting.
func (s *Standby) Follow(interval time.Duration, failAfter int, stop <-chan struct{}) error {
	if failAfter <= 0 {
		failAfter = 3
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-tick.C:
		}
		if err := s.SyncOnce(); err != nil {
			if s.Misses() >= failAfter {
				return fmt.Errorf("%w: %d consecutive heartbeats missed: %w", ErrLeaderLost, s.Misses(), err)
			}
			if s.Misses() == 0 {
				// Not a heartbeat miss: the manifest answered but replay or
				// verification failed. Divergent or corrupt history must
				// never be promoted.
				return err
			}
		}
	}
}

// Misses returns the consecutive missed-heartbeat count.
func (s *Standby) Misses() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Stalled reports whether the last sync exhausted its retries.
func (s *Standby) Stalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled
}

// LSN returns the standby's replication position.
func (s *Standby) LSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reh.LSN()
}

// LeaderTerm returns the term from the last good manifest.
func (s *Standby) LeaderTerm() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderTerm
}

// Lag returns the last observed leader LSN minus the applied LSN.
func (s *Standby) Lag() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderLSN - s.reh.LSN()
}

// Promote turns the standby into the shard's new leader. takeoverDir is the
// dead leader's journal directory (a shared/replicated mount in production,
// the literal directory in drills): the standby replays every durable record
// past its replication position — the shipped stream stops at the last
// sealed segment, the takeover read continues through the active segment's
// durable prefix, and a torn tail (the mid-write death) is dropped by
// journal.Load exactly as crash recovery would drop it. Every record that
// was acked is therefore replayed exactly once; the only thing lost is work
// that was never acknowledged.
//
// The new leader journals to newDir: a fresh WAL opened with a full
// snapshot at LSN 0, so the handoff state is self-contained and auditable
// (invariant.CheckFailover re-derives it from the old journal and compares).
// Its term is max(last manifest term, dead leader's persisted term) + 1.
func (s *Standby) Promote(takeoverDir, newDir string) (*Leader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted {
		return nil, fmt.Errorf("federation: standby already promoted")
	}
	st, err := journal.Load(takeoverDir)
	if err != nil {
		return nil, fmt.Errorf("federation: load takeover journal: %w", err)
	}
	if int64(len(st.Records)) < s.reh.LSN() {
		return nil, fmt.Errorf("federation: takeover journal has %d records, standby replayed %d",
			len(st.Records), s.reh.LSN())
	}
	for i := s.reh.LSN(); i < int64(len(st.Records)); i++ {
		if err := s.reh.Apply(st.Records[i]); err != nil {
			return nil, fmt.Errorf("federation: finish replay at LSN %d: %w", i+1, err)
		}
	}
	term := s.leaderTerm
	if persisted, err := ReadTerm(takeoverDir); err != nil {
		return nil, err
	} else if persisted > term {
		term = persisted
	}
	term++
	jn, err := journal.Open(newDir, journal.Options{SegmentBytes: s.cfg.SegmentBytes, NoSync: s.cfg.NoSync})
	if err != nil {
		return nil, fmt.Errorf("federation: open promoted journal: %w", err)
	}
	opt := engineOptions(s.cfg)
	opt.Journal = jn
	eng := s.reh.Promote(opt)
	// The handoff snapshot (LSN 0 of the new WAL) makes the promoted journal
	// self-contained: recovery and audit never need the old directory.
	if err := eng.SnapshotNow(); err != nil {
		return nil, fmt.Errorf("federation: handoff snapshot: %w", err)
	}
	if err := WriteTerm(newDir, term); err != nil {
		return nil, err
	}
	srv := server.New(s.p, eng, serverConfig(s.cfg))
	srv.SetTerm(term)
	s.promoted = true
	statFailovers.Inc()
	return &Leader{cfg: s.cfg, p: s.p, jn: jn, srv: srv, dir: newDir, dead: make(chan struct{})}, nil
}

// Status is the follower's /federation payload.
type Status struct {
	Role       string `json:"role"`
	Region     string `json:"region"`
	Shard      int    `json:"shard"`
	LeaderTerm int64  `json:"leader_term"`
	LSN        int64  `json:"lsn"`
	LagRecords int64  `json:"lag_records"`
	SyncedSegs int    `json:"synced_segments"`
	Misses     int    `json:"heartbeat_misses"`
	Stalled    bool   `json:"stalled"`
}

// Status snapshots the follower's replication state.
func (s *Standby) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Role:       "follower",
		Region:     s.cfg.Region,
		Shard:      s.cfg.Shard,
		LeaderTerm: s.leaderTerm,
		LSN:        s.reh.LSN(),
		LagRecords: s.leaderLSN - s.reh.LSN(),
		SyncedSegs: s.lastSeg,
		Misses:     s.misses,
		Stalled:    s.stalled,
	}
}

// HealthzHandler is the follower's /healthz: 200 while replication is
// keeping up, 503 "replication-stalled" once ship retries have been
// exhausted — load balancers must not promote-by-accident a follower that
// cannot even reach its leader's history.
func (s *Standby) HealthzHandler(w http.ResponseWriter, _ *http.Request) {
	if s.Stalled() {
		http.Error(w, string(instrument.ReasonReplicationStalled), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := w.Write([]byte("ok\n")); err != nil {
		return
	}
}
