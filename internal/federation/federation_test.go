package federation

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgerep/internal/journal"
	"edgerep/internal/server"
	"edgerep/internal/workload"
)

func TestOwnerPartition(t *testing.T) {
	p, err := server.BuildInstance(server.DefaultInstance())
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	counts := make([]int, shards)
	for _, v := range p.Cloud.Topology().ComputeNodes {
		sh := OwnerOfNode(v, shards)
		if sh < 0 || sh >= shards {
			t.Fatalf("node %d owned by shard %d", v, sh)
		}
		counts[sh]++
	}
	for sh, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no nodes", sh)
		}
	}
	for q := range p.Queries {
		sh := OwnerOfQuery(p, workload.QueryID(q), shards)
		if want := OwnerOfNode(p.Queries[q].Home, shards); sh != want {
			t.Fatalf("query %d owner %d, home owner %d", q, sh, want)
		}
	}
	if OwnerOfNode(5, 1) != 0 || OwnerOfNode(5, 0) != 0 {
		t.Fatal("unfederated ownership must be shard 0")
	}
}

func TestTermFilePersistence(t *testing.T) {
	dir := t.TempDir()
	if term, err := ReadTerm(dir); err != nil || term != 0 {
		t.Fatalf("missing term file: got %d, %v", term, err)
	}
	if err := WriteTerm(dir, 7); err != nil {
		t.Fatal(err)
	}
	if term, err := ReadTerm(dir); err != nil || term != 7 {
		t.Fatalf("round trip: got %d, %v", term, err)
	}
	// A leader may never start behind its own persisted term.
	cfg := Config{Instance: server.DefaultInstance(), Shards: 1, NoSync: true, ExpectedArrivals: 100}
	if _, err := StartLeader(cfg, dir, 3); err == nil {
		t.Fatal("StartLeader accepted a term behind the persisted one")
	} else if !strings.Contains(err.Error(), "behind persisted term") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLeaderMaskJournaledAndRecovered(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Region: "r1", Instance: server.DefaultInstance(), Shards: 3, Shard: 1,
		ExpectedArrivals: 100, NoSync: true, DeterministicClock: true,
	}
	l, err := StartLeader(cfg, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := l.Problem()
	notOwned := 0
	for _, v := range p.Cloud.Topology().ComputeNodes {
		if OwnerOfNode(v, 3) != 1 {
			notOwned++
		}
	}
	if err := l.Drain(); err != nil {
		t.Fatal(err)
	}
	st, err := journal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) != notOwned {
		t.Fatalf("mask journaled %d records, want %d (one crash per foreign node)", len(st.Records), notOwned)
	}
	// Restart resumes from the journal: the mask must come back without
	// re-crashing anything (the record count must not grow).
	l2, err := StartLeader(cfg, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Journal().LSN(); got != int64(notOwned) {
		t.Fatalf("recovered leader at LSN %d, want %d", got, notOwned)
	}
	if l2.Term() != 2 {
		t.Fatalf("recovered leader term %d, want 2", l2.Term())
	}
}

// stubTransport scripts Transport outcomes for standby unit tests.
type stubTransport struct {
	manifest Manifest
	fail     bool
	segs     map[int][]byte
}

func (s *stubTransport) Manifest() (Manifest, error) {
	if s.fail {
		return Manifest{}, fmt.Errorf("stub: %w", errors.New("unreachable"))
	}
	return s.manifest, nil
}

func (s *stubTransport) Segment(seal journal.SealInfo) ([]byte, error) {
	data, ok := s.segs[seal.Segment]
	if !ok {
		return nil, errors.New("stub: no such segment")
	}
	return data, nil
}

// TestStandbyStalledHealthz is the satellite-2 regression: exhausted ship
// retries must surface as a replication-stalled 503 on the follower's
// /healthz, and a successful sync must clear it.
func TestStandbyStalledHealthz(t *testing.T) {
	tr := &stubTransport{manifest: Manifest{Region: "r0", Term: 1}}
	cfg := Config{Instance: server.DefaultInstance(), Shards: 1, ExpectedArrivals: 100}
	s, err := NewStandby(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	probe := func() (int, string) {
		rec := httptest.NewRecorder()
		s.HealthzHandler(rec, nil)
		return rec.Code, rec.Body.String()
	}
	if code, _ := probe(); code != 200 {
		t.Fatalf("fresh standby healthz %d, want 200", code)
	}
	tr.fail = true
	if err := s.SyncOnce(); err == nil {
		t.Fatal("SyncOnce succeeded against a dead transport")
	}
	if !s.Stalled() || s.Misses() != 1 {
		t.Fatalf("stalled=%v misses=%d after exhausted retries, want true/1", s.Stalled(), s.Misses())
	}
	code, body := probe()
	if code != 503 || !strings.Contains(body, "replication-stalled") {
		t.Fatalf("stalled healthz = %d %q, want 503 replication-stalled", code, body)
	}
	tr.fail = false
	if err := s.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if s.Stalled() || s.Misses() != 0 {
		t.Fatalf("stalled=%v misses=%d after recovery, want false/0", s.Stalled(), s.Misses())
	}
	if code, _ := probe(); code != 200 {
		t.Fatalf("recovered healthz %d, want 200", code)
	}
}

// TestStandbyRejectsSegmentGap: a manifest that skips a segment must abort
// the sync, not silently apply a history with a hole.
func TestStandbyRejectsSegmentGap(t *testing.T) {
	tr := &stubTransport{manifest: Manifest{
		Term:     1,
		Segments: []journal.SealInfo{{Segment: 2, Bytes: 10, CRC: 1}},
	}}
	cfg := Config{Instance: server.DefaultInstance(), Shards: 1, ExpectedArrivals: 100}
	s, err := NewStandby(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SyncOnce(); err == nil || !strings.Contains(err.Error(), "skips") {
		t.Fatalf("gap not detected: %v", err)
	}
}

// TestShipFromLiveLeader exercises the in-process transport end to end: a
// journaling leader rotates segments, the standby pulls and replays them,
// and the replication position tracks the leader's sealed prefix.
func TestShipFromLiveLeader(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Region: "r0", Instance: server.DefaultInstance(), Shards: 1,
		ExpectedArrivals: 400, SegmentBytes: 2048, NoSync: true, DeterministicClock: true,
	}
	l, err := StartLeader(cfg, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := l.Server()
	if _, err := server.Drive(srv, server.DriveConfig{Count: 300, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	st, err := NewStandby(cfg, &LeaderTransport{Leader: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	m, err := l.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) == 0 {
		t.Fatal("leader sealed no segments at 2KiB segment size — shipping untested")
	}
	var sealedRecords int64
	for _, seal := range m.Segments {
		data, err := journal.ReadSealedSegment(dir, seal)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, err := journal.DecodeSegment(data)
		if err != nil {
			t.Fatal(err)
		}
		sealedRecords += int64(len(recs))
	}
	if st.LSN() != sealedRecords {
		t.Fatalf("standby at LSN %d, sealed prefix holds %d records", st.LSN(), sealedRecords)
	}
	if lag := st.Lag(); lag != m.LSN-sealedRecords {
		t.Fatalf("lag %d, want %d", lag, m.LSN-sealedRecords)
	}
	if err := l.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Manifest(); err == nil {
		t.Fatal("killed leader still answers manifests")
	}
	nl, err := st.Promote(dir, filepath.Join(t.TempDir(), "promoted"))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Term() != 2 {
		t.Fatalf("promoted term %d, want 2", nl.Term())
	}
	if nl.Server().Term() != 2 {
		t.Fatalf("promoted server fences term %d, want 2", nl.Server().Term())
	}
	// The handoff snapshot at LSN 0 must exist and decode.
	if _, err := journal.SnapshotAt(nl.Dir(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Promote(dir, t.TempDir()); err == nil {
		t.Fatal("double promotion allowed")
	}
}

func TestHTTPTransportShipsAndRetries(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Region: "r0", Instance: server.DefaultInstance(), Shards: 1,
		ExpectedArrivals: 300, SegmentBytes: 2048, NoSync: true, DeterministicClock: true,
	}
	l, err := StartLeader(cfg, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Drive(l.Server(), server.DriveConfig{Count: 200, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(l.Handler(nil))
	defer hs.Close()
	tr := NewHTTPTransport(hs.URL, 0)
	m, err := tr.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) == 0 {
		t.Fatal("no sealed segments over HTTP")
	}
	data, err := tr.Segment(m.Segments[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.VerifySealedBytes(data, m.Segments[0]); err != nil {
		t.Fatal(err)
	}
	// A seal the leader does not have must 404 through the retry loop and
	// surface as an error, never as silent bytes.
	if _, err := tr.Segment(journal.SealInfo{Segment: 999, Bytes: 1, CRC: 1}); err == nil {
		t.Fatal("phantom segment fetched")
	}
	_ = os.RemoveAll(dir)
}
