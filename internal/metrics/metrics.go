// Package metrics renders experiment results as aligned text tables and CSV,
// the form in which every figure of the paper is regenerated (one table per
// figure panel: an x-axis sweep with one series per algorithm).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one algorithm's curve across the sweep.
type Series struct {
	Name   string
	Values []float64
}

// Table is one figure panel.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
}

// NewTable creates an empty table.
func NewTable(title, xlabel, ylabel string) *Table {
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddPoint appends a y value to the named series (creating it on first use)
// and ensures the x tick is registered.
func (t *Table) AddPoint(series, xtick string, y float64) {
	found := false
	for _, x := range t.XTicks {
		if x == xtick {
			found = true
			break
		}
	}
	if !found {
		t.XTicks = append(t.XTicks, xtick)
	}
	for i := range t.Series {
		if t.Series[i].Name == series {
			t.Series[i].Values = append(t.Series[i].Values, y)
			return
		}
	}
	t.Series = append(t.Series, Series{Name: series, Values: []float64{y}})
}

// Validate reports nil when every series has one value per x tick.
func (t *Table) Validate() error {
	for _, s := range t.Series {
		if len(s.Values) != len(t.XTicks) {
			return fmt.Errorf("metrics: series %q has %d values for %d ticks",
				s.Name, len(s.Values), len(t.XTicks))
		}
	}
	return nil
}

// Get returns the value of a series at an x tick.
func (t *Table) Get(series, xtick string) (float64, bool) {
	xi := -1
	for i, x := range t.XTicks {
		if x == xtick {
			xi = i
			break
		}
	}
	if xi == -1 {
		return 0, false
	}
	for _, s := range t.Series {
		if s.Name == series && xi < len(s.Values) {
			return s.Values[xi], true
		}
	}
	return 0, false
}

// Ratio returns the mean ratio of series a over series b across all ticks.
func (t *Table) Ratio(a, b string) (float64, error) {
	var sa, sb *Series
	for i := range t.Series {
		switch t.Series[i].Name {
		case a:
			sa = &t.Series[i]
		case b:
			sb = &t.Series[i]
		}
	}
	if sa == nil || sb == nil {
		return 0, fmt.Errorf("metrics: ratio needs series %q and %q", a, b)
	}
	if len(sa.Values) != len(sb.Values) || len(sa.Values) == 0 {
		return 0, fmt.Errorf("metrics: mismatched series lengths")
	}
	sum, n := 0.0, 0
	for i := range sa.Values {
		if sb.Values[i] > 0 {
			sum += sa.Values[i] / sb.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: series %q all zero", b)
	}
	return sum / float64(n), nil
}

// Render writes the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "  y: %s\n", t.YLabel)
	// Header.
	w := 12
	for _, s := range t.Series {
		if len(s.Name)+2 > w {
			w = len(s.Name) + 2
		}
	}
	fmt.Fprintf(&b, "  %-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%*s", w, s.Name)
	}
	b.WriteByte('\n')
	for xi, x := range t.XTicks {
		fmt.Fprintf(&b, "  %-12s", x)
		for _, s := range t.Series {
			if xi < len(s.Values) {
				fmt.Fprintf(&b, "%*s", w, formatVal(s.Values[xi]))
			} else {
				fmt.Fprintf(&b, "%*s", w, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for xi, x := range t.XTicks {
		b.WriteString(x)
		for _, s := range t.Series {
			b.WriteByte(',')
			if xi < len(s.Values) {
				fmt.Fprintf(&b, "%g", s.Values[xi])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Markdown renders the table as a GitHub-flavored markdown table, the format
// EXPERIMENTS.md embeds.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s** (%s)\n\n", t.Title, t.YLabel)
	b.WriteString("| " + t.XLabel + " |")
	for _, s := range t.Series {
		b.WriteString(" " + s.Name + " |")
	}
	b.WriteString("\n|---|")
	for range t.Series {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for xi, x := range t.XTicks {
		b.WriteString("| " + x + " |")
		for _, s := range t.Series {
			if xi < len(s.Values) {
				b.WriteString(" " + formatVal(s.Values[xi]) + " |")
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
