package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Table {
	t := NewTable("Fig X", "network size", "volume (GB)")
	t.AddPoint("Appro-G", "20", 10)
	t.AddPoint("Greedy-G", "20", 5)
	t.AddPoint("Appro-G", "50", 20)
	t.AddPoint("Greedy-G", "50", 8)
	return t
}

func TestAddPointAndValidate(t *testing.T) {
	tab := sample()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.XTicks) != 2 || len(tab.Series) != 2 {
		t.Fatalf("ticks %v series %d", tab.XTicks, len(tab.Series))
	}
	tab.AddPoint("Appro-G", "80", 30)
	if err := tab.Validate(); err == nil {
		t.Fatal("ragged table accepted")
	}
}

func TestGet(t *testing.T) {
	tab := sample()
	v, ok := tab.Get("Greedy-G", "50")
	if !ok || v != 8 {
		t.Fatalf("Get = %v,%v want 8,true", v, ok)
	}
	if _, ok := tab.Get("Greedy-G", "99"); ok {
		t.Fatal("unknown tick found")
	}
	if _, ok := tab.Get("Nope", "20"); ok {
		t.Fatal("unknown series found")
	}
}

func TestRatio(t *testing.T) {
	tab := sample()
	r, err := tab.Ratio("Appro-G", "Greedy-G")
	if err != nil {
		t.Fatal(err)
	}
	want := (10.0/5.0 + 20.0/8.0) / 2
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("ratio %v, want %v", r, want)
	}
	if _, err := tab.Ratio("Appro-G", "Missing"); err == nil {
		t.Fatal("missing series accepted")
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := sample()
	out := tab.Render()
	for _, want := range []string{"Fig X", "network size", "Appro-G", "Greedy-G", "20", "50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if lines[0] != "network size,Appro-G,Greedy-G" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if lines[1] != "20,10,5" {
		t.Fatalf("CSV row %q", lines[1])
	}
}

func TestFormatValEdgeCases(t *testing.T) {
	tab := NewTable("t", "x", "y")
	tab.AddPoint("s", "a", math.NaN())
	tab.AddPoint("s", "b", 0.0001)
	tab.AddPoint("s", "c", 123456)
	out := tab.Render()
	for _, want := range []string{"NaN", "e-", "123456"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("Stddev = %v, want ≈2.138", s)
	}
	if Stddev([]float64{1}) != 0 {
		t.Fatal("Stddev singleton != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("P50 = %v, want 5", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("P100 = %v, want 10", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v, want 1", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return pa <= pb && pa >= lo && pb <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkdown(t *testing.T) {
	tab := sample()
	md := tab.Markdown()
	for _, want := range []string{"**Fig X**", "| network size |", "| Appro-G |", "|---|", "| 20 |", "10.00"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 2+2+2 { // title, blank, header, separator, 2 rows
		t.Fatalf("markdown has %d lines:\n%s", len(lines), md)
	}
}
