// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    cᵀx
//	subject to  Ax ≤ b   (rows marked LE)
//	            Ax = b   (rows marked EQ)
//	            Ax ≥ b   (rows marked GE)
//	            x ≥ 0
//
// It exists so the repository can compute exact optima of the paper's ILP
// (via internal/ilp's branch & bound) without any external solver. The
// implementation favours clarity and robustness on the small instances used
// in tests and the optimality-gap bench over raw speed: Bland's rule
// guarantees termination, and a small tolerance guards degeneracy.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relation of one constraint row.
type Sense int

const (
	// LE is Ax ≤ b.
	LE Sense = iota
	// EQ is Ax = b.
	EQ
	// GE is Ax ≥ b.
	GE
)

// Constraint is one row of the program.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	// Objective holds c; the solver maximizes cᵀx.
	Objective   []float64
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal: a finite optimum was found.
	Optimal Status = iota
	// Infeasible: the constraint set has no solution.
	Infeasible
	// Unbounded: the objective can grow without limit.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X is the optimal assignment (valid when Status == Optimal).
	X []float64
	// Value is cᵀx at the optimum.
	Value float64
	// Duals holds one dual value per constraint (valid when Status ==
	// Optimal), oriented with respect to the constraints as given: for a
	// maximization, y_i ≥ 0 on Ax ≤ b rows, y_i ≤ 0 on Ax ≥ b rows, free
	// on equalities, and strong duality gives Σ b_i·y_i = Value.
	Duals []float64
}

// ErrBadProblem reports a structurally invalid program.
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// Validate reports nil for a well-formed program.
func (p *Problem) Validate() error {
	n := len(p.Objective)
	if n == 0 {
		return fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return fmt.Errorf("%w: constraint %d has %d coefficients, want %d",
				ErrBadProblem, i, len(c.Coeffs), n)
		}
		if c.Sense != LE && c.Sense != EQ && c.Sense != GE {
			return fmt.Errorf("%w: constraint %d has unknown sense %d", ErrBadProblem, i, c.Sense)
		}
		for j, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: constraint %d coefficient %d is %v", ErrBadProblem, i, j, v)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d RHS is %v", ErrBadProblem, i, c.RHS)
		}
	}
	for j, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: objective coefficient %d is %v", ErrBadProblem, j, v)
		}
	}
	return nil
}

// tableau is the standard-form working matrix: rows are constraints (with
// slack/surplus/artificial columns appended), the last row is the objective.
type tableau struct {
	rows, cols int // constraint rows, total columns (excl. RHS)
	a          [][]float64
	basis      []int
	numVars    int // original variables
	// barred marks columns (artificials after phase 1) that must never
	// re-enter the basis; kept intact so duals can be read off them.
	barred []bool
}

// Solve runs two-phase primal simplex.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Objective)
	m := len(p.Constraints)

	// Normalize to RHS ≥ 0 by flipping rows.
	rows := make([]Constraint, m)
	flipped := make([]bool, m)
	for i, c := range p.Constraints {
		coeffs := append([]float64(nil), c.Coeffs...)
		sense, rhs := c.Sense, c.RHS
		if rhs < 0 {
			flipped[i] = true
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows[i] = Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs}
	}

	// Column layout: [x (n)] [slack/surplus (≤ m)] [artificial (≤ m)].
	slackCols, artCols := 0, 0
	for _, c := range rows {
		switch c.Sense {
		case LE:
			slackCols++
		case GE:
			slackCols++
			artCols++
		case EQ:
			artCols++
		}
	}
	cols := n + slackCols + artCols
	t := &tableau{rows: m, cols: cols, numVars: n, basis: make([]int, m)}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, cols+1) // +1 for RHS
	}
	slackAt, artAt := n, n+slackCols
	artificial := make([]int, 0, artCols)
	t.barred = make([]bool, cols)
	// dualCol/dualSign locate, per normalized row, an identity column from
	// which the row's dual value can be read in the final objective row:
	// y_i = dualSign · (c_j − z_j) of that column.
	dualCol := make([]int, m)
	dualSign := make([]float64, m)
	for i, c := range rows {
		copy(t.a[i], c.Coeffs)
		t.a[i][cols] = c.RHS
		switch c.Sense {
		case LE:
			t.a[i][slackAt] = 1
			t.basis[i] = slackAt
			dualCol[i], dualSign[i] = slackAt, -1 // A_j = +e_i
			slackAt++
		case GE:
			t.a[i][slackAt] = -1
			dualCol[i], dualSign[i] = slackAt, 1 // A_j = −e_i
			slackAt++
			t.a[i][artAt] = 1
			t.basis[i] = artAt
			artificial = append(artificial, artAt)
			artAt++
		case EQ:
			t.a[i][artAt] = 1
			t.basis[i] = artAt
			dualCol[i], dualSign[i] = artAt, -1 // A_j = +e_i
			artificial = append(artificial, artAt)
			artAt++
		}
	}

	// Phase 1: minimize Σ artificials (maximize −Σ).
	if len(artificial) > 0 {
		obj := t.a[m]
		for j := range obj {
			obj[j] = 0
		}
		for _, j := range artificial {
			obj[j] = -1
		}
		t.priceOut()
		if status := t.iterate(); status == Unbounded {
			return nil, fmt.Errorf("lp: phase-1 unbounded (internal error)")
		}
		// The objective row's RHS holds −z after price-out; phase-1's
		// optimum z* = −Σ artificials, so a positive residual here means
		// some artificial variable is stuck above zero: infeasible.
		if t.a[m][cols] > eps {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive any artificial variables out of the basis.
		isArt := make(map[int]bool, len(artificial))
		for _, j := range artificial {
			isArt[j] = true
		}
		for i := 0; i < m; i++ {
			if !isArt[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < n+slackCols; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: the artificial stays basic at zero,
				// harmless as long as its column never re-enters.
				continue
			}
		}
	}

	// Phase 2: original objective; artificial columns are barred from
	// re-entering the basis but kept intact so duals can be read off them.
	obj := t.a[m]
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, p.Objective)
	for _, j := range artificial {
		t.barred[j] = true
	}
	t.priceOut()
	if status := t.iterate(); status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.a[i][cols]
		}
	}
	value := 0.0
	for j := 0; j < n; j++ {
		value += p.Objective[j] * x[j]
	}
	duals := make([]float64, m)
	for i := 0; i < m; i++ {
		y := dualSign[i] * t.a[m][dualCol[i]]
		if flipped[i] {
			y = -y // the normalized row is the negation of the original
		}
		duals[i] = y
	}
	return &Solution{Status: Optimal, X: x, Value: value, Duals: duals}, nil
}

// priceOut rewrites the objective row in terms of non-basic variables.
func (t *tableau) priceOut() {
	m := t.rows
	for i := 0; i < m; i++ {
		cb := t.a[m][t.basis[i]]
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			t.a[m][j] -= cb * t.a[i][j]
		}
	}
}

// iterate runs primal simplex pivots with Bland's rule until optimality or
// unboundedness.
func (t *tableau) iterate() Status {
	m := t.rows
	for iter := 0; ; iter++ {
		// Entering: smallest index with positive reduced cost (Bland),
		// skipping barred (artificial) columns.
		enter := -1
		for j := 0; j < t.cols; j++ {
			if t.barred != nil && t.barred[j] {
				continue
			}
			if t.a[m][j] > eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Leaving: minimum ratio, ties to smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.a[i][t.cols] / t.a[i][enter]
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					leave, bestRatio = i, ratio
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	pv := t.a[leave][enter]
	row := t.a[leave]
	for j := 0; j <= t.cols; j++ {
		row[j] /= pv
	}
	for i := 0; i <= t.rows; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			t.a[i][j] -= f * row[j]
		}
	}
	t.basis[leave] = enter
}
