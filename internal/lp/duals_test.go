package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDualsSimpleLE(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6. Optimum (4,0), value 12.
	// Binding: row 0 only → y0 = 3, y1 = 0.
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Sense: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if len(s.Duals) != 2 {
		t.Fatalf("got %d duals, want 2", len(s.Duals))
	}
	if !almost(s.Duals[0], 3) || !almost(s.Duals[1], 0) {
		t.Fatalf("duals = %v, want [3 0]", s.Duals)
	}
}

func TestStrongDualityHandPicked(t *testing.T) {
	p := &Problem{
		Objective: []float64{10, 6, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1}, Sense: LE, RHS: 100},
			{Coeffs: []float64{10, 4, 5}, Sense: LE, RHS: 600},
			{Coeffs: []float64{2, 2, 6}, Sense: LE, RHS: 300},
		},
	}
	s := solveOK(t, p)
	dualVal := 0.0
	for i, c := range p.Constraints {
		dualVal += c.RHS * s.Duals[i]
	}
	if !almost(dualVal, s.Value) {
		t.Fatalf("strong duality violated: bᵀy = %v, cᵀx = %v", dualVal, s.Value)
	}
}

func TestDualsWithEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 3, y ≤ 2 → (1,2), value 5.
	// Duals: equality row y0 = 1 (raising b by ε gains ε), y1 = 1.
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 3},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if !almost(s.Duals[0], 1) || !almost(s.Duals[1], 1) {
		t.Fatalf("duals = %v, want [1 1]", s.Duals)
	}
	dualVal := 3*s.Duals[0] + 2*s.Duals[1]
	if !almost(dualVal, s.Value) {
		t.Fatalf("strong duality: %v vs %v", dualVal, s.Value)
	}
}

func TestDualsWithGE(t *testing.T) {
	// max −x s.t. x ≥ 2 → x = 2, value −2. Dual of the GE row (for a
	// maximization) is ≤ 0 and bᵀy = −2 → y = −1.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if !almost(s.Duals[0], -1) {
		t.Fatalf("dual = %v, want -1", s.Duals[0])
	}
}

func TestDualsFlippedRow(t *testing.T) {
	// −x ≤ −2 (i.e. x ≥ 2), max −x. The user's row is LE with negative
	// RHS; its dual must satisfy strong duality against the ORIGINAL b:
	// (−2)·y = −2 → y = 1 (≥ 0, consistent with an LE row).
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Sense: LE, RHS: -2},
		},
	}
	s := solveOK(t, p)
	if !almost(s.Duals[0], 1) {
		t.Fatalf("dual = %v, want 1", s.Duals[0])
	}
	if !almost(-2*s.Duals[0], s.Value) {
		t.Fatalf("strong duality on flipped row: %v vs %v", -2*s.Duals[0], s.Value)
	}
}

// Property: strong duality and complementary slackness hold on random
// feasible bounded packing LPs.
func TestStrongDualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = 0.5 + rng.Float64()*10
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: 1 + rng.Float64()*10}
			for j := range c.Coeffs {
				c.Coeffs[j] = 0.1 + rng.Float64()*5
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Strong duality.
		dualVal := 0.0
		for i, c := range p.Constraints {
			dualVal += c.RHS * s.Duals[i]
		}
		if math.Abs(dualVal-s.Value) > 1e-6*(1+math.Abs(s.Value)) {
			return false
		}
		// Dual feasibility for LE rows of a maximization: y ≥ 0 and
		// AᵀY ≥ c.
		for i := range p.Constraints {
			if s.Duals[i] < -1e-7 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			lhs := 0.0
			for i, c := range p.Constraints {
				lhs += c.Coeffs[j] * s.Duals[i]
			}
			if lhs < p.Objective[j]-1e-6 {
				return false
			}
		}
		// Complementary slackness: y_i > 0 ⇒ row i tight.
		for i, c := range p.Constraints {
			if s.Duals[i] > 1e-6 {
				ax := 0.0
				for j := range c.Coeffs {
					ax += c.Coeffs[j] * s.X[j]
				}
				if math.Abs(ax-c.RHS) > 1e-6*(1+math.Abs(c.RHS)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
