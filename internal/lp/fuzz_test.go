package lp

import (
	"math"
	"testing"
)

// FuzzSolvePacking feeds arbitrary small packing LPs to the solver and
// checks the fundamental invariants: no panic, and when the solver reports
// Optimal, the returned point is primal-feasible and strong duality holds.
func FuzzSolvePacking(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2))
	f.Add(int64(42), uint8(5), uint8(3))
	f.Add(int64(-7), uint8(1), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8) {
		n := 1 + int(nRaw)%6
		m := 1 + int(mRaw)%6
		// Deterministic pseudo-random coefficients from the seed.
		state := uint64(seed)*0x9e3779b97f4a7c15 + 1
		next := func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state%1000) / 100.0
		}
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = next()
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: 1 + next()}
			for j := range c.Coeffs {
				c.Coeffs[j] = next()
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("well-formed packing LP rejected: %v", err)
		}
		switch s.Status {
		case Optimal:
			for i, c := range p.Constraints {
				lhs := 0.0
				for j := range c.Coeffs {
					lhs += c.Coeffs[j] * s.X[j]
				}
				if lhs > c.RHS+1e-5 {
					t.Fatalf("constraint %d violated: %v > %v", i, lhs, c.RHS)
				}
			}
			for j, x := range s.X {
				if x < -1e-7 {
					t.Fatalf("negative variable %d = %v", j, x)
				}
			}
			dual := 0.0
			for i, c := range p.Constraints {
				dual += c.RHS * s.Duals[i]
			}
			if math.Abs(dual-s.Value) > 1e-4*(1+math.Abs(s.Value)) {
				t.Fatalf("strong duality violated: %v vs %v", dual, s.Value)
			}
		case Unbounded:
			// Possible when some objective coefficient is positive and a
			// variable appears in no constraint with positive coefficient.
		case Infeasible:
			t.Fatalf("packing LP with non-negative RHS cannot be infeasible")
		}
	})
}
