package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 → x=4, y=0, value 12.
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Sense: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !almost(s.Value, 12) {
		t.Fatalf("got %v value %v, want optimal 12", s.Status, s.Value)
	}
	if !almost(s.X[0], 4) || !almost(s.X[1], 0) {
		t.Fatalf("X = %v, want [4 0]", s.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. x ≤ 2, y ≤ 3 → value 5 at (2,3).
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 2},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if !almost(s.Value, 5) {
		t.Fatalf("value %v, want 5", s.Value)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + 2y s.t. x + y = 3, y ≤ 2 → (1,2), value 5.
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 3},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !almost(s.Value, 5) {
		t.Fatalf("got %v value %v, want optimal 5", s.Status, s.Value)
	}
	if !almost(s.X[0], 1) || !almost(s.X[1], 2) {
		t.Fatalf("X = %v, want [1 2]", s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// max −x (i.e. minimize x) s.t. x ≥ 2 → x = 2.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !almost(s.X[0], 2) {
		t.Fatalf("got %v X=%v, want x=2", s.Status, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2 cannot hold.
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// −x ≤ −2 means x ≥ 2; max −x → x = 2.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Sense: LE, RHS: -2},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal || !almost(s.X[0], 2) {
		t.Fatalf("got %v X=%v, want x=2", s.Status, s.X)
	}
}

func TestDegenerateCycleTerminates(t *testing.T) {
	// Classic degeneracy-prone instance (Beale); Bland's rule must
	// terminate with the optimum 0.05 at x4=1... (objective variant).
	p := &Problem{
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Sense: LE, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v, want optimal", s.Status)
	}
	if !almost(s.Value, 0.05) {
		t.Fatalf("value %v, want 0.05", s.Value)
	}
}

func TestKnapsackRelaxation(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c ≤ 100, 10a+4b+5c ≤ 600, 2a+2b+6c ≤ 300.
	// Known optimum ≈ 733.333 at a≈33.33, b≈66.67, c=0.
	p := &Problem{
		Objective: []float64{10, 6, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1}, Sense: LE, RHS: 100},
			{Coeffs: []float64{10, 4, 5}, Sense: LE, RHS: 600},
			{Coeffs: []float64{2, 2, 6}, Sense: LE, RHS: 300},
		},
	}
	s := solveOK(t, p)
	if !almost(s.Value, 2200.0/3.0) {
		t.Fatalf("value %v, want %v", s.Value, 2200.0/3.0)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []*Problem{
		{Objective: nil},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Sense: LE, RHS: 1}}},
		{Objective: []float64{math.NaN()}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{math.Inf(1)}, Sense: LE, RHS: 1}}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Sense: Sense(9), RHS: 1}}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: math.NaN()}}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Fatalf("malformed problem %d accepted", i)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(7).String() != "Status(7)" {
		t.Fatal("Status strings wrong")
	}
}

// Property: for random feasible bounded packing LPs (all coefficients ≥ 0,
// RHS > 0), the solution is feasible and no constraint is violated.
func TestRandomPackingFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64() * 10
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: 1 + rng.Float64()*10}
			for j := range c.Coeffs {
				c.Coeffs[j] = rng.Float64() * 5
			}
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, v := range c.Coeffs {
				lhs += v * s.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimum of a packing LP weakly increases when every RHS is
// doubled (feasible region grows).
func TestMonotoneInRHSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		base := &Problem{Objective: make([]float64, n)}
		for j := range base.Objective {
			base.Objective[j] = rng.Float64() * 10
		}
		grown := &Problem{Objective: base.Objective}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: 1 + rng.Float64()*5}
			for j := range c.Coeffs {
				c.Coeffs[j] = 0.1 + rng.Float64()*5
			}
			base.Constraints = append(base.Constraints, c)
			grown.Constraints = append(grown.Constraints,
				Constraint{Coeffs: c.Coeffs, Sense: LE, RHS: 2 * c.RHS})
		}
		s1, err1 := Solve(base)
		s2, err2 := Solve(grown)
		if err1 != nil || err2 != nil || s1.Status != Optimal || s2.Status != Optimal {
			return false
		}
		return s2.Value >= s1.Value-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimplex20x30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := &Problem{Objective: make([]float64, 30)}
	for j := range p.Objective {
		p.Objective[j] = rng.Float64() * 10
	}
	for i := 0; i < 20; i++ {
		c := Constraint{Coeffs: make([]float64, 30), Sense: LE, RHS: 5 + rng.Float64()*10}
		for j := range c.Coeffs {
			c.Coeffs[j] = rng.Float64() * 3
		}
		p.Constraints = append(p.Constraints, c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
