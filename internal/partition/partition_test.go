package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edgerep/internal/graph"
)

func lineGraph(n int) (*graph.Graph, []graph.NodeID) {
	g := graph.New(n)
	nodes := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		nodes[i] = graph.NodeID(i)
		if i > 0 {
			g.AddEdge(graph.NodeID(i-1), graph.NodeID(i), 1)
		}
	}
	return g, nodes
}

func randomGraph(n int, seed int64) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.25 {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
			}
		}
	}
	g.Connect(1)
	return g, nodes
}

func TestKWayBasicInvariants(t *testing.T) {
	g, nodes := randomGraph(40, 3)
	dm := graph.NewDistanceCache(g).Matrix()
	for _, k := range []int{1, 2, 3, 5, 8} {
		p, err := KWay(nodes, k, dm)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k {
			t.Fatalf("k=%d: partitioning has K=%d", k, p.K)
		}
		if len(p.Parts) != len(nodes) {
			t.Fatalf("k=%d: %d of %d nodes assigned", k, len(p.Parts), len(nodes))
		}
		for i, s := range p.Sizes() {
			if s == 0 {
				t.Fatalf("k=%d: part %d empty", k, i)
			}
		}
	}
}

func TestKWayErrors(t *testing.T) {
	g, nodes := lineGraph(5)
	dm := graph.NewDistanceCache(g).Matrix()
	if _, err := KWay(nodes, 0, dm); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KWay(nil, 2, dm); err == nil {
		t.Fatal("empty node set accepted")
	}
}

func TestKWayMorePartsThanNodesClamps(t *testing.T) {
	g, nodes := lineGraph(3)
	dm := graph.NewDistanceCache(g).Matrix()
	p, err := KWay(nodes, 10, dm)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 {
		t.Fatalf("K = %d, want clamp to 3", p.K)
	}
}

func TestKWaySinglePartContainsAll(t *testing.T) {
	g, nodes := lineGraph(7)
	dm := graph.NewDistanceCache(g).Matrix()
	p, err := KWay(nodes, 1, dm)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Members(0)); got != 7 {
		t.Fatalf("single part holds %d of 7 nodes", got)
	}
}

func TestKWayLineSplitsContiguously(t *testing.T) {
	// On a line with k=2 the optimal split is contiguous halves; the
	// refinement should find a contiguous split (each part's members form
	// an interval).
	g, nodes := lineGraph(10)
	dm := graph.NewDistanceCache(g).Matrix()
	p, err := KWay(nodes, 2, dm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m := p.Members(i)
		for j := 1; j < len(m); j++ {
			if m[j] != m[j-1]+1 {
				t.Fatalf("part %d not contiguous on a line: %v", i, m)
			}
		}
	}
}

func TestRefinementNeverIncreasesCost(t *testing.T) {
	g, nodes := randomGraph(30, 9)
	dm := graph.NewDistanceCache(g).Matrix()
	// Build the unrefined assignment by reproducing seeding + nearest-seed.
	seeds := pickSeeds(nodes, 4, dm)
	parts := make(map[graph.NodeID]int)
	for i, s := range seeds {
		parts[s] = i
	}
	for _, v := range nodes {
		if _, ok := parts[v]; ok {
			continue
		}
		best, bestD := 0, dm.Between(v, seeds[0])
		for i, s := range seeds[1:] {
			if d := dm.Between(v, s); d < bestD {
				best, bestD = i+1, d
			}
		}
		parts[v] = best
	}
	raw := &Partitioning{K: 4, Parts: parts}
	before := raw.Cost(dm)
	refined, err := KWay(nodes, 4, dm)
	if err != nil {
		t.Fatal(err)
	}
	if after := refined.Cost(dm); after > before+1e-9 {
		t.Fatalf("refinement increased cost: %v -> %v", before, after)
	}
}

func TestMedoidsAreMembers(t *testing.T) {
	g, nodes := randomGraph(25, 11)
	dm := graph.NewDistanceCache(g).Matrix()
	p, err := KWay(nodes, 3, dm)
	if err != nil {
		t.Fatal(err)
	}
	meds := p.Medoids(dm)
	if len(meds) != 3 {
		t.Fatalf("got %d medoids", len(meds))
	}
	for i, m := range meds {
		if p.Parts[m] != i {
			t.Fatalf("medoid %d of part %d belongs to part %d", m, i, p.Parts[m])
		}
	}
}

// Property: every node lands in exactly one part and part count is within
// [1, min(k, n)] for arbitrary sizes.
func TestKWayCoverageProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 2 + int(nRaw)%40
		k := 1 + int(kRaw)%10
		g, nodes := randomGraph(n, seed)
		dm := graph.NewDistanceCache(g).Matrix()
		p, err := KWay(nodes, k, dm)
		if err != nil {
			return false
		}
		if len(p.Parts) != n {
			return false
		}
		for _, part := range p.Parts {
			if part < 0 || part >= p.K {
				return false
			}
		}
		for _, s := range p.Sizes() {
			if s == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKWay100(b *testing.B) {
	g, nodes := randomGraph(100, 1)
	dm := graph.NewDistanceCache(g).Matrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KWay(nodes, 5, dm); err != nil {
			b.Fatal(err)
		}
	}
}
