// Package partition implements k-way graph partitioning over shortest-path
// distances. The paper's second benchmark (Graph-S / Graph-G) follows Golab
// et al. [10], which places data via graph partitioning to minimize
// communication cost; this package supplies that substrate: greedy region
// growing seeded by a farthest-point heuristic, followed by a
// Kernighan–Lin-style refinement pass, plus medoid extraction for replica
// sites.
package partition

import (
	"fmt"
	"math"
	"sort"

	"edgerep/internal/graph"
)

// Partitioning maps each node to a part in [0,k).
type Partitioning struct {
	K     int
	Parts map[graph.NodeID]int
}

// Members returns the nodes of part i in ascending order.
func (p *Partitioning) Members(i int) []graph.NodeID {
	var out []graph.NodeID
	for v, part := range p.Parts {
		if part == i {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Sizes returns the size of every part.
func (p *Partitioning) Sizes() []int {
	s := make([]int, p.K)
	for _, part := range p.Parts {
		s[part]++
	}
	return s
}

// Cost is the total intra-part distance: Σ over parts of Σ pairwise member
// distances. Lower is better; refinement minimizes this objective.
func (p *Partitioning) Cost(dm *graph.DistanceMatrix) float64 {
	total := 0.0
	for i := 0; i < p.K; i++ {
		m := p.Members(i)
		for a := 0; a < len(m); a++ {
			for b := a + 1; b < len(m); b++ {
				total += dm.Between(m[a], m[b])
			}
		}
	}
	return total
}

// KWay partitions the given nodes into k parts using distances from dm.
// Seeds are chosen by a farthest-point sweep (the first seed is the node
// with minimum eccentricity, each further seed maximizes its distance to the
// chosen set); every remaining node joins its nearest seed; a bounded number
// of KL-style single-node moves then reduces intra-part cost while keeping
// every part non-empty.
func KWay(nodes []graph.NodeID, k int, dm *graph.DistanceMatrix) (*Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d, need ≥ 1", k)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("partition: no nodes")
	}
	if k > len(nodes) {
		k = len(nodes) // cannot have more non-empty parts than nodes
	}

	seeds := pickSeeds(nodes, k, dm)
	part := make(map[graph.NodeID]int, len(nodes))
	for i, s := range seeds {
		part[s] = i
	}
	for _, v := range nodes {
		if _, isSeed := part[v]; isSeed {
			continue
		}
		best, bestD := 0, math.Inf(1)
		for i, s := range seeds {
			if d := dm.Between(v, s); d < bestD {
				best, bestD = i, d
			}
		}
		part[v] = best
	}

	p := &Partitioning{K: k, Parts: part}
	refine(p, nodes, dm)
	return p, nil
}

// pickSeeds returns k spread-out seeds.
func pickSeeds(nodes []graph.NodeID, k int, dm *graph.DistanceMatrix) []graph.NodeID {
	// First seed: minimum eccentricity within the node set (a center).
	first, bestEcc := nodes[0], math.Inf(1)
	for _, u := range nodes {
		ecc := 0.0
		for _, v := range nodes {
			if d := dm.Between(u, v); d > ecc && !math.IsInf(d, 1) {
				ecc = d
			}
		}
		if ecc < bestEcc {
			first, bestEcc = u, ecc
		}
	}
	seeds := []graph.NodeID{first}
	for len(seeds) < k {
		var far graph.NodeID = -1
		farD := -1.0
		for _, v := range nodes {
			already := false
			for _, s := range seeds {
				if s == v {
					already = true
					break
				}
			}
			if already {
				continue
			}
			// Distance to the seed set = min over seeds.
			dmin := math.Inf(1)
			for _, s := range seeds {
				if d := dm.Between(v, s); d < dmin {
					dmin = d
				}
			}
			if dmin > farD {
				far, farD = v, dmin
			}
		}
		if far == -1 {
			break
		}
		seeds = append(seeds, far)
	}
	return seeds
}

// refine performs single-node moves that reduce intra-part cost, bounded to
// a fixed number of sweeps for predictable runtime.
func refine(p *Partitioning, nodes []graph.NodeID, dm *graph.DistanceMatrix) {
	const sweeps = 4
	sizes := p.Sizes()
	for s := 0; s < sweeps; s++ {
		improved := false
		for _, v := range nodes {
			cur := p.Parts[v]
			if sizes[cur] <= 1 {
				continue // keep every part non-empty
			}
			curCost := attachCost(v, cur, p, dm)
			bestPart, bestCost := cur, curCost
			for cand := 0; cand < p.K; cand++ {
				if cand == cur {
					continue
				}
				if c := attachCost(v, cand, p, dm); c < bestCost {
					bestPart, bestCost = cand, c
				}
			}
			if bestPart != cur {
				p.Parts[v] = bestPart
				sizes[cur]--
				sizes[bestPart]++
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// attachCost is the sum of distances from v to the members of part i
// (excluding v itself): the marginal intra-part cost of placing v there.
func attachCost(v graph.NodeID, i int, p *Partitioning, dm *graph.DistanceMatrix) float64 {
	c := 0.0
	for u, part := range p.Parts {
		if part == i && u != v {
			c += dm.Between(v, u)
		}
	}
	return c
}

// Medoids returns the medoid of every part: the natural replica sites of the
// Golab-style placement.
func (p *Partitioning) Medoids(dm *graph.DistanceMatrix) []graph.NodeID {
	out := make([]graph.NodeID, p.K)
	for i := 0; i < p.K; i++ {
		out[i] = dm.Medoid(p.Members(i))
	}
	return out
}
