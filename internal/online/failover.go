// Failover repair for the online engine: when a node crashes it takes its
// replicas and its in-flight allocations with it. Crash releases the ledger
// state, then a repair loop re-serves every stranded assignment using the
// same instantaneous dual prices as admission — an existing surviving
// replica if one meets the deadline, otherwise a new replica within the
// freed K budget (re-replication priced like any lazy replica open, and
// re-synced from the origin when a consistency manager is attached).
// Queries that cannot be repaired are evicted: their admission is undone and
// their volume given back, which is exactly the degradation the ext-chaos
// experiment measures.
package online

import (
	"fmt"
	"math"
	"sort"

	"edgerep/internal/cluster"
	"edgerep/internal/consistency"
	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/workload"
)

var (
	statCrashes   = instrument.NewCounter("online.node_crashes")
	statRepairs   = instrument.NewCounter("online.repairs")
	statEvictions = instrument.NewCounter("online.crash_evictions")
	statResyncs   = instrument.NewCounter("online.replica_resyncs")
)

// CrashReport summarizes one node failure and the repair that followed.
type CrashReport struct {
	Node graph.NodeID
	// LostReplicas is how many dataset replicas lived on the node.
	LostReplicas int
	// ReleasedGHz is the in-flight allocation the crash freed.
	ReleasedGHz float64
	// AffectedQueries had at least one assignment served by the node.
	AffectedQueries []workload.QueryID
	// Repaired counts assignments re-pointed at a surviving or new replica.
	Repaired int
	// NewReplicas counts repairs that had to open a replica (within K).
	NewReplicas int
	// Evicted lists queries no surviving node could serve in-deadline.
	Evicted []workload.QueryID
	// EvictedVolume is the demanded volume given back by evictions.
	EvictedVolume float64
	// ResyncGB and ResyncCostGBSec are the consistency cost of
	// re-replicating onto new replica nodes (zero without a manager).
	ResyncGB        float64
	ResyncCostGBSec float64
}

// AttachLiveness shares a liveness tracker with the engine (drivers that
// coordinate several components pass one tracker around). Without it the
// engine lazily creates its own on the first crash. Swapping trackers
// invalidates the fast path's liveness mirror unconditionally: the new
// tracker's generation could coincide with the old one's.
func (e *Engine) AttachLiveness(l *cluster.Liveness) {
	e.live = l
	if e.fast != nil {
		e.fast.invalidate()
	}
}

// AttachConsistency wires a consistency manager so failover repair accounts
// full re-replication traffic for every replica it opens.
func (e *Engine) AttachConsistency(m *consistency.Manager) { e.cons = m }

// Liveness returns the engine's tracker (creating it if needed).
func (e *Engine) Liveness() *cluster.Liveness {
	if e.live == nil {
		e.live = cluster.NewLiveness()
	}
	return e.live
}

// Restore marks a crashed node alive again. It comes back empty — replicas
// re-materialize only through admission or repair. The returned error is the
// journal's (durable engines only; nil otherwise).
func (e *Engine) Restore(v graph.NodeID) error {
	e.Liveness().MarkUp(v)
	return e.journalRestore(v)
}

// Crash processes the failure of node v at time atSec (non-decreasing, like
// Offer): the node's replicas and allocations are lost, every assignment it
// served is repaired onto a surviving node within the K bound or its query
// is evicted. The returned report is deterministic for a deterministic
// engine history.
func (e *Engine) Crash(atSec float64, v graph.NodeID) (CrashReport, error) {
	if atSec < e.now {
		return CrashReport{}, fmt.Errorf("online: crash at %.3fs before current time %.3fs", atSec, e.now)
	}
	e.now = atSec
	e.drainReleases()
	rep := CrashReport{Node: v}
	if !e.Liveness().MarkDown(v) {
		// Already down: a no-op, but journaled like any other crash input so
		// replay walks the exact same path.
		return rep, e.journalCrash(atSec, v, rep, 0)
	}
	statCrashes.Inc()

	// The node's replicas are gone.
	var lost []workload.DatasetID
	for n := range e.sol.Replicas {
		if e.sol.HasReplica(n, v) {
			lost = append(lost, n)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	for _, n := range lost {
		e.sol.RemoveReplica(n, v)
		if e.cons != nil {
			e.cons.RetireReplica(n, v)
		}
	}
	rep.LostReplicas = len(lost)

	// Its in-flight allocations are gone too; remember which (query,
	// dataset) holds were live so repair can move them.
	activeHold := make(map[workload.QueryID]map[workload.DatasetID]float64) // expiry times
	kept := e.releases[:0]
	for _, r := range e.releases {
		if r.node != v {
			kept = append(kept, r)
			continue
		}
		rep.ReleasedGHz += r.amt
		m := activeHold[r.query]
		if m == nil {
			m = make(map[workload.DatasetID]float64)
			activeHold[r.query] = m
		}
		m[r.dataset] = r.at
	}
	e.releases = kept
	e.reheapReleases()
	e.setUsed(v, 0)

	// Every assignment served by v is stranded — including those of queries
	// whose hold already expired: the solution must stay replayable against
	// the ILP, so they are re-pointed (free) or their query is evicted.
	byQuery := make(map[workload.QueryID][]workload.DatasetID)
	for _, a := range e.sol.Assignments {
		if a.Node == v {
			byQuery[a.Query] = append(byQuery[a.Query], a.Dataset)
		}
	}
	affected := make([]workload.QueryID, 0, len(byQuery))
	for q := range byQuery {
		affected = append(affected, q)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	rep.AffectedQueries = affected

	volLost := 0.0
	for _, q := range affected {
		volLost += e.p.Queries[q].DemandedVolume(e.p.Datasets)
	}
	e.emitCrash(v, volLost)

	for _, q := range affected {
		e.repairQuery(q, byQuery[q], activeHold[q], &rep)
	}
	return rep, e.journalCrash(atSec, v, rep, volLost)
}

// repairQuery re-serves query q's stranded datasets, or evicts it.
func (e *Engine) repairQuery(q workload.QueryID, datasets []workload.DatasetID,
	holds map[workload.DatasetID]float64, rep *CrashReport) {

	if e.opt.NoRepair {
		e.evict(q, rep)
		return
	}
	sort.Slice(datasets, func(i, j int) bool { return datasets[i] < datasets[j] })
	type move struct {
		dataset workload.DatasetID
		node    graph.NodeID
		fresh   bool
		expiry  float64
		active  bool
	}
	var moves []move
	// Plan all of the query's stranded datasets first (all-or-nothing, like
	// admission): tentative capacity keeps two datasets of one query from
	// both claiming the last GHz of a node.
	tentative := make(map[graph.NodeID]float64)
	tentOpen := make(map[workload.DatasetID]map[graph.NodeID]bool)
	for _, n := range datasets {
		expiry, active := holds[n]
		w, fresh, ok := e.pickRepairNode(q, n, active, tentative, tentOpen)
		if !ok {
			e.evict(q, rep)
			return
		}
		if active {
			tentative[w] += e.p.ComputeNeed(q, n)
		}
		if fresh {
			m := tentOpen[n]
			if m == nil {
				m = make(map[graph.NodeID]bool)
				tentOpen[n] = m
			}
			m[w] = true
		}
		moves = append(moves, move{dataset: n, node: w, fresh: fresh, expiry: expiry, active: active})
	}
	for _, mv := range moves {
		if mv.fresh {
			e.sol.AddReplica(mv.dataset, mv.node)
			rep.NewReplicas++
			if e.cons != nil {
				if ev, err := e.cons.ResyncReplica(mv.dataset, mv.node); err == nil {
					rep.ResyncGB += ev.VolumeGB
					rep.ResyncCostGBSec += ev.CostGBSec
				}
			}
			statResyncs.Inc()
		}
		e.sol.Reassign(q, mv.dataset, mv.node)
		if mv.active {
			need := e.p.ComputeNeed(q, mv.dataset)
			if u := e.addUsed(mv.node, need) / e.p.Cloud.Capacity(mv.node); u > e.peak {
				e.peak = u
			}
			e.pushRelease(release{at: mv.expiry, node: mv.node, amt: need, query: q, dataset: mv.dataset})
		}
		rep.Repaired++
		statRepairs.Inc()
		e.emitRepair(q, mv.dataset, mv.node)
	}
}

// pickRepairNode selects the cheapest live node that can take over one
// stranded (query, dataset) under the same dual pricing as admission.
// needsCapacity is false for queries whose hold already expired — their
// compute is done; only replica presence and the deadline must be restored.
func (e *Engine) pickRepairNode(q workload.QueryID, n workload.DatasetID, needsCapacity bool,
	tentative map[graph.NodeID]float64, tentOpen map[workload.DatasetID]map[graph.NodeID]bool) (graph.NodeID, bool, bool) {

	need := e.p.ComputeNeed(q, n)
	size := e.p.Datasets[n].SizeGB
	deadline := e.p.Queries[q].DeadlineSec
	openCount := e.sol.ReplicaCount(n) + len(tentOpen[n])
	maxU := e.opt.maxUtil()

	var best graph.NodeID = -1
	bestFresh := false
	bestCost := math.Inf(1)
	for _, w := range e.p.Cloud.ComputeNodes() {
		if e.live.IsDown(w) {
			continue
		}
		delay, ok := e.p.EvalDelay(q, n, w)
		if !ok || delay > deadline {
			continue
		}
		if needsCapacity {
			capGHz := e.p.Cloud.Capacity(w)
			if e.usedGHz(w)+tentative[w]+need > capGHz*maxU+1e-9 {
				continue
			}
		}
		has := e.sol.HasReplica(n, w) || tentOpen[n][w]
		repPrice := 0.0
		if !has {
			if openCount >= e.p.MaxReplicas {
				continue
			}
			repPrice = 0.25 * size * float64(openCount+1) / float64(e.p.MaxReplicas)
		}
		cost := need*e.theta(w) + e.opt.delayWeight()*size*(delay/deadline) + repPrice
		if cost < bestCost {
			best, bestFresh, bestCost = w, !has, cost
		}
	}
	return best, bestFresh, best != -1
}

// evict undoes query q's admission: its remaining allocations are released,
// its assignments removed, its volume given back.
func (e *Engine) evict(q workload.QueryID, rep *CrashReport) {
	kept := e.releases[:0]
	for _, r := range e.releases {
		if r.query == q {
			if e.addUsed(r.node, -r.amt) < 0 {
				e.setUsed(r.node, 0)
			}
			continue
		}
		kept = append(kept, r)
	}
	e.releases = kept
	e.reheapReleases()
	vol := e.p.Queries[q].DemandedVolume(e.p.Datasets)
	e.sol.Unadmit(q)
	e.res.VolumeAdmitted -= vol
	e.res.Evicted++
	rep.Evicted = append(rep.Evicted, q)
	rep.EvictedVolume += vol
	statEvictions.Inc()
	e.emitEvict(q, vol)
}
