package online_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edgerep/internal/cluster"
	"edgerep/internal/core"
	"edgerep/internal/invariant"
	"edgerep/internal/online"
	"edgerep/internal/placement"
	"edgerep/internal/topology"
	"edgerep/internal/workload"
)

func TestOfferBasicAdmission(t *testing.T) {
	p, w := online.NewTestProblem(t, 1, 30)
	e := online.NewEngine(p, len(w.Queries), online.Options{})
	admitted := 0
	for i := range w.Queries {
		dec, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Admitted {
			admitted++
			if len(dec.Assignments) != len(w.Queries[i].Demands) {
				t.Fatalf("query %d admitted with %d/%d assignments",
					i, len(dec.Assignments), len(w.Queries[i].Demands))
			}
		}
	}
	r := e.Result()
	if r.Admitted != admitted || r.Admitted+r.Rejected != len(w.Queries) {
		t.Fatalf("bookkeeping: %+v vs admitted %d of %d", r, admitted, len(w.Queries))
	}
	if admitted == 0 {
		t.Fatal("online engine admitted nothing")
	}
	if r.PeakUtilization <= 0 || r.PeakUtilization > 1+1e-9 {
		t.Fatalf("peak utilization %v outside (0,1]", r.PeakUtilization)
	}
}

func TestHoldForeverMatchesOfflineCapacityModel(t *testing.T) {
	// With HoldSec = 0 (never released), the online solution must satisfy
	// the offline validator's capacity constraint.
	p, w := online.NewTestProblem(t, 2, 40)
	e := online.NewEngine(p, len(w.Queries), online.Options{})
	for i := range w.Queries {
		if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Solution().Validate(p); err != nil {
		t.Fatalf("online hold-forever solution fails offline validation: %v", err)
	}
	if err := invariant.CheckSolution(p, e.Solution(), e.Result().VolumeAdmitted); err != nil {
		t.Fatalf("online hold-forever solution violates paper invariants: %v", err)
	}
}

func TestCapacityReleasedAfterHold(t *testing.T) {
	// Arrivals far apart with short holds: capacity is reused, so many
	// more queries are admitted than the hold-forever run.
	pHold, w := online.NewTestProblem(t, 3, 60)
	eHold := online.NewEngine(pHold, len(w.Queries), online.Options{})
	pRel, _ := online.NewTestProblem(t, 3, 60)
	eRel := online.NewEngine(pRel, len(w.Queries), online.Options{})
	for i := range w.Queries {
		at := float64(i) * 10
		if _, err := eHold.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: at}); err != nil {
			t.Fatal(err)
		}
		if _, err := eRel.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: at, HoldSec: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if eRel.Result().Admitted < eHold.Result().Admitted {
		t.Fatalf("releasing capacity admitted fewer queries (%d) than holding forever (%d)",
			eRel.Result().Admitted, eHold.Result().Admitted)
	}
	// With 10s gaps and 1s holds, no two allocations overlap, so every
	// rejection is due to deadlines or the K-frozen replica sets — never
	// capacity. Sanity-bound: at least half the deadline-feasible queries
	// must get in (K-freezing accounts for the rest).
	deadlineOnly := 0
	for i := range w.Queries {
		feasible := true
		for _, dm := range w.Queries[i].Demands {
			if len(pRel.FeasibleNodes(workload.QueryID(i), dm.Dataset)) == 0 {
				feasible = false
			}
		}
		if feasible {
			deadlineOnly++
		}
	}
	if eRel.Result().Admitted < deadlineOnly/2 {
		t.Fatalf("short-hold run admitted %d, expected at least half of the %d deadline-feasible queries",
			eRel.Result().Admitted, deadlineOnly)
	}
	// Finite holds release capacity over time, so the offline capacity sum
	// does not apply — everything else (replica, deadline, K, objective) must.
	if err := invariant.CheckAdmissions(pRel, eRel.Solution(), eRel.Result().VolumeAdmitted); err != nil {
		t.Fatalf("short-hold solution violates paper invariants: %v", err)
	}
}

func TestReplicaBoundHeldOnline(t *testing.T) {
	p, w := online.NewTestProblem(t, 4, 50)
	e := online.NewEngine(p, len(w.Queries), online.Options{})
	for i := range w.Queries {
		if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for n, nodes := range e.Solution().Replicas {
		if len(nodes) > p.MaxReplicas {
			t.Fatalf("dataset %d has %d replicas online, K=%d", n, len(nodes), p.MaxReplicas)
		}
	}
}

func TestArrivalOrderEnforced(t *testing.T) {
	p, _ := online.NewTestProblem(t, 5, 10)
	e := online.NewEngine(p, 10, online.Options{})
	if _, err := e.Offer(online.Arrival{Query: 0, AtSec: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Offer(online.Arrival{Query: 1, AtSec: 3}); err == nil {
		t.Fatal("time-travel arrival accepted")
	}
	if _, err := e.Offer(online.Arrival{Query: workload.QueryID(99), AtSec: 6}); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestForecastImprovesOrMatchesLazy(t *testing.T) {
	// The forecast-driven preferred sites should not hurt admitted volume
	// on average when the forecast equals the actual workload.
	var lazySum, foreSum float64
	for seed := int64(1); seed <= 6; seed++ {
		pLazy, w := online.NewTestProblem(t, seed, 50)
		eLazy := online.NewEngine(pLazy, len(w.Queries), online.Options{})
		pFore, _ := online.NewTestProblem(t, seed, 50)
		eFore := online.NewEngine(pFore, len(w.Queries), online.Options{Forecast: w.Queries})
		for i := range w.Queries {
			if _, err := eLazy.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i)}); err != nil {
				t.Fatal(err)
			}
			if _, err := eFore.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		lazySum += eLazy.Result().VolumeAdmitted
		foreSum += eFore.Result().VolumeAdmitted
	}
	if foreSum < lazySum*0.95 {
		t.Fatalf("forecast placement hurt online volume: %.1f vs lazy %.1f", foreSum, lazySum)
	}
}

func TestMaxUtilizationHeadroom(t *testing.T) {
	p, w := online.NewTestProblem(t, 7, 60)
	e := online.NewEngine(p, len(w.Queries), online.Options{MaxUtilization: 0.5})
	for i := range w.Queries {
		if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if peak := e.Result().PeakUtilization; peak > 0.5+1e-9 {
		t.Fatalf("peak utilization %v exceeds the 0.5 headroom cap", peak)
	}
}

// Offline Appro-G sees all queries at once and should beat (or match) the
// online engine that must decide irrevocably per arrival.
func TestOfflineDominatesOnline(t *testing.T) {
	var onSum, offSum float64
	for seed := int64(1); seed <= 6; seed++ {
		pOn, w := online.NewTestProblem(t, seed, 50)
		e := online.NewEngine(pOn, len(w.Queries), online.Options{})
		for i := range w.Queries {
			if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		onSum += e.Result().VolumeAdmitted
		pOff, _ := online.NewTestProblem(t, seed, 50)
		res, err := core.ApproG(pOff, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		offSum += res.Solution.Volume(pOff)
	}
	if onSum > offSum*1.05 {
		t.Fatalf("online (%.1f) implausibly beats offline (%.1f)", onSum, offSum)
	}
}

// Property: for any arrival permutation, the engine never violates the
// instantaneous capacity of any node.
func TestInstantaneousCapacityProperty(t *testing.T) {
	p, w := online.NewTestProblem(t, 11, 40)
	f := func(permSeed int64) bool {
		pp, _ := online.NewTestProblem(t, 11, 40)
		e := online.NewEngine(pp, len(w.Queries), online.Options{})
		order := rand.New(rand.NewSource(permSeed)).Perm(len(w.Queries))
		for i, qi := range order {
			dec, err := e.Offer(online.Arrival{Query: workload.QueryID(qi), AtSec: float64(i), HoldSec: 5})
			if err != nil {
				return false
			}
			_ = dec
		}
		if err := invariant.CheckAdmissions(pp, e.Solution(), e.Result().VolumeAdmitted); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		return e.Result().PeakUtilization <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
	_ = p
}

func BenchmarkOnlineOffer(b *testing.B) {
	tc := topology.DefaultConfig()
	top := topology.MustGenerate(tc)
	wc := workload.DefaultConfig()
	wc.NumDatasets = 10
	wc.NumQueries = 100
	w := workload.MustGenerate(wc, top)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := placement.NewProblem(cluster.New(top), w, 3)
		if err != nil {
			b.Fatal(err)
		}
		e := online.NewEngine(p, len(w.Queries), online.Options{})
		for qi := range w.Queries {
			if _, err := e.Offer(online.Arrival{Query: workload.QueryID(qi), AtSec: float64(qi), HoldSec: 10}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
