// Durable state for the online engine: every input the engine acts on —
// offers, node crashes, restores — is journaled to a write-ahead log
// together with the outcome the engine committed to (admit/reject in the
// typed trace-event schema, repair/evict as counts), and the full engine
// state is periodically snapshotted. Because the engine is deterministic —
// the same problem and the same input sequence reproduce the same state —
// recovery is: load the newest snapshot, replay the WAL suffix through the
// ordinary Offer/Crash/Restore paths, and cross-check each replayed outcome
// against the recorded one (a mismatch means the problem or binary changed
// under the journal and recovery refuses with ErrDivergent rather than
// resurrect a different history). invariant.CheckRecovered proves the result
// field-identical to a never-crashed run.
package online

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/journal"
	"edgerep/internal/placement"
	"edgerep/internal/workload"
)

// ErrDivergent reports that replaying a journal produced a different outcome
// than the one recorded — the journal belongs to a different problem
// instance or engine version, and recovering from it would fabricate state.
var ErrDivergent = errors.New("online: journal replay diverged from recorded outcome")

// Journal record kinds: the engine's three externally-driven inputs.
const (
	recordOffer   = "offer"
	recordCrash   = "crash"
	recordRestore = "restore"
)

// JournalRecord is one WAL entry: the input the engine was given plus the
// outcome it committed to. Outcome reuses the typed trace schema
// (instrument.TraceEvent): an admit-shaped or reject-shaped event for
// offers (reject outcomes carry no Reason — classification is a trace
// concern, not a durability one), a crash-shaped event for crashes, nil for
// restores.
type JournalRecord struct {
	Kind string  `json:"kind"`
	At   float64 `json:"at"`
	// Hold is the offer's HoldSec (offers only).
	Hold  float64 `json:"hold,omitempty"`
	Query int64   `json:"query"`
	Node  int64   `json:"node"`
	// Outcome is the committed result in trace-event shape.
	Outcome *instrument.TraceEvent `json:"outcome,omitempty"`
	// LostReplicas, Repaired, Evicted summarize a crash's repair phase; a
	// replayed crash must reproduce them exactly.
	LostReplicas int `json:"lost_replicas,omitempty"`
	Repaired     int `json:"repaired,omitempty"`
	Evicted      int `json:"evicted,omitempty"`
}

// NodeUse is one node's instantaneous allocation in an EngineState.
type NodeUse struct {
	Node graph.NodeID `json:"node"`
	GHz  float64      `json:"ghz"`
}

// ReleaseState is one scheduled capacity release in an EngineState. Forever
// marks hold-forever allocations (the engine keeps them at +Inf, which JSON
// cannot encode; At is 0 in that case).
type ReleaseState struct {
	At      float64            `json:"at"`
	Forever bool               `json:"forever,omitempty"`
	Node    graph.NodeID       `json:"node"`
	GHz     float64            `json:"ghz"`
	Query   workload.QueryID   `json:"query"`
	Dataset workload.DatasetID `json:"dataset"`
}

// ReplicaSet is one dataset's replica nodes in an EngineState, in the order
// the solution holds them (placement order is part of the engine's state).
type ReplicaSet struct {
	Dataset workload.DatasetID `json:"dataset"`
	Nodes   []graph.NodeID     `json:"nodes"`
}

// EngineState is the canonical dump of an Engine: everything that varies
// with the input history, in deterministic order. It is the snapshot payload
// and the object invariant.CheckRecovered compares field by field —
// "recovered" means every field here matches a never-crashed engine's.
type EngineState struct {
	Now            float64 `json:"now"`
	Peak           float64 `json:"peak"`
	VolumeAdmitted float64 `json:"volume_admitted"`
	Admitted       int     `json:"admitted"`
	Rejected       int     `json:"rejected"`
	Evicted        int     `json:"evicted"`
	// Used holds the non-zero instantaneous allocations, sorted by node.
	Used []NodeUse `json:"used,omitempty"`
	// Releases holds the pending capacity releases, sorted (the heap's
	// internal layout is not state — its multiset is).
	Releases []ReleaseState `json:"releases,omitempty"`
	// Replicas holds each dataset's replica nodes, sorted by dataset.
	Replicas        []ReplicaSet           `json:"replicas,omitempty"`
	Assignments     []placement.Assignment `json:"assignments,omitempty"`
	AdmittedQueries []workload.QueryID     `json:"admitted_queries,omitempty"`
	Decisions       []Decision             `json:"decisions,omitempty"`
	// Down lists crashed-and-not-restored nodes, sorted.
	Down []graph.NodeID `json:"down,omitempty"`
}

// StateDump captures the engine's canonical state (see EngineState).
func (e *Engine) StateDump() *EngineState {
	st := &EngineState{
		Now:            e.now,
		Peak:           e.peak,
		VolumeAdmitted: e.res.VolumeAdmitted,
		Admitted:       e.res.Admitted,
		Rejected:       e.res.Rejected,
		Evicted:        e.res.Evicted,
	}
	// The ledger is dense; ascending compute-node order reproduces the old
	// map dump's sorted output exactly (non-compute nodes are never held).
	for _, v := range e.p.Cloud.ComputeNodes() {
		if amt := e.usedGHz(v); amt != 0 {
			st.Used = append(st.Used, NodeUse{Node: v, GHz: amt})
		}
	}
	for _, r := range e.releases {
		rs := ReleaseState{At: r.at, Node: r.node, GHz: r.amt, Query: r.query, Dataset: r.dataset}
		if math.IsInf(r.at, 1) {
			rs.At, rs.Forever = 0, true
		}
		st.Releases = append(st.Releases, rs)
	}
	sort.Slice(st.Releases, func(i, j int) bool {
		a, b := st.Releases[i], st.Releases[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Forever != b.Forever {
			return !a.Forever
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		return a.Dataset < b.Dataset
	})
	for n, nodes := range e.sol.Replicas {
		if len(nodes) == 0 {
			continue
		}
		st.Replicas = append(st.Replicas, ReplicaSet{Dataset: n, Nodes: append([]graph.NodeID(nil), nodes...)})
	}
	sort.Slice(st.Replicas, func(i, j int) bool { return st.Replicas[i].Dataset < st.Replicas[j].Dataset })
	st.Assignments = append([]placement.Assignment(nil), e.sol.Assignments...)
	st.AdmittedQueries = append([]workload.QueryID(nil), e.sol.Admitted...)
	st.Decisions = append([]Decision(nil), e.res.Decisions...)
	if e.live != nil {
		// Normalized to nil when no node is down so a dump survives a JSON
		// round-trip (omitempty) unchanged.
		if down := e.live.DownNodes(); len(down) > 0 {
			st.Down = down
		}
	}
	return st
}

// loadState overwrites the engine's dynamic state from a snapshot dump.
func (e *Engine) loadState(st *EngineState) {
	e.now = st.Now
	e.peak = st.Peak
	e.res = Result{
		VolumeAdmitted: st.VolumeAdmitted,
		Admitted:       st.Admitted,
		Rejected:       st.Rejected,
		Evicted:        st.Evicted,
		Decisions:      append([]Decision(nil), st.Decisions...),
	}
	e.resetUsed()
	for _, u := range st.Used {
		e.setUsed(u.Node, u.GHz)
	}
	e.releases = e.releases[:0]
	for _, r := range st.Releases {
		at := r.At
		if r.Forever {
			at = math.Inf(1)
		}
		e.releases = append(e.releases, release{at: at, node: r.Node, amt: r.GHz, query: r.Query, dataset: r.Dataset})
	}
	e.reheapReleases()
	e.sol = placement.NewSolution()
	for _, rs := range st.Replicas {
		e.sol.Replicas[rs.Dataset] = append([]graph.NodeID(nil), rs.Nodes...)
	}
	e.sol.Assignments = append([]placement.Assignment(nil), st.Assignments...)
	e.sol.Admitted = append([]workload.QueryID(nil), st.AdmittedQueries...)
	for _, v := range st.Down {
		e.Liveness().MarkDown(v)
	}
	// A bulk load rewrote liveness and load wholesale; force the fast
	// path's mirror to rebuild even if generations happen to line up.
	if e.fast != nil {
		e.fast.invalidate()
	}
}

// Now returns the engine's current model time: the AtSec of the latest
// offered arrival (or of the latest crash). A daemon that recovers an engine
// uses it as the floor for its serving clock, so post-recovery arrivals never
// travel back in time relative to the replayed history.
func (e *Engine) Now() float64 { return e.now }

// SnapshotNow forces a full state snapshot at the journal's current LSN,
// regardless of the SnapshotEvery cadence. The admission daemon calls it on
// graceful drain so a later restart replays zero WAL records. No-op without
// an attached journal.
func (e *Engine) SnapshotNow() error {
	if e.jn == nil {
		return nil
	}
	snap, err := json.Marshal(e.StateDump())
	if err != nil {
		return fmt.Errorf("online: marshal snapshot: %w", err)
	}
	return e.jn.Snapshot(snap)
}

// appendRecord journals one record and takes a snapshot when the cadence
// says so. No-op while replaying or without a journal.
func (e *Engine) appendRecord(rec *JournalRecord) error {
	if e.jn == nil || e.replaying {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("online: marshal journal record: %w", err)
	}
	if _, err := e.jn.Append(data); err != nil {
		return err
	}
	if e.snapEvery > 0 && e.jn.LSN()%int64(e.snapEvery) == 0 {
		snap, err := json.Marshal(e.StateDump())
		if err != nil {
			return fmt.Errorf("online: marshal snapshot: %w", err)
		}
		if err := e.jn.Snapshot(snap); err != nil {
			return err
		}
	}
	return nil
}

// journalOffer records one offer with its committed decision in trace-event
// shape (admit with the per-demand assignment, or a reason-less reject).
func (e *Engine) journalOffer(a Arrival, dec Decision) error {
	if e.jn == nil || e.replaying {
		return nil
	}
	rec := &JournalRecord{Kind: recordOffer, At: a.AtSec, Hold: a.HoldSec, Query: int64(a.Query), Node: -1}
	var ev instrument.TraceEvent
	if dec.Admitted {
		ev = instrument.NewTraceEvent(instrument.EventAdmit, traceAlgo)
		ev.Query = int64(a.Query)
		for _, asg := range dec.Assignments {
			ev.Datasets = append(ev.Datasets, int64(asg.Dataset))
			ev.Nodes = append(ev.Nodes, int64(asg.Node))
			ev.Volume += e.p.Datasets[asg.Dataset].SizeGB
		}
	} else {
		ev = instrument.NewTraceEvent(instrument.EventReject, traceAlgo)
		ev.Query = int64(a.Query)
	}
	rec.Outcome = &ev
	return e.appendRecord(rec)
}

// journalCrash records one crash with its repair summary.
func (e *Engine) journalCrash(atSec float64, v graph.NodeID, rep CrashReport, volLost float64) error {
	if e.jn == nil || e.replaying {
		return nil
	}
	ev := instrument.NewTraceEvent(instrument.EventCrash, traceAlgo)
	ev.Node = int64(v)
	ev.Volume = volLost
	rec := &JournalRecord{
		Kind: recordCrash, At: atSec, Query: -1, Node: int64(v),
		Outcome: &ev, LostReplicas: rep.LostReplicas, Repaired: rep.Repaired, Evicted: len(rep.Evicted),
	}
	return e.appendRecord(rec)
}

// journalRestore records a node restore.
func (e *Engine) journalRestore(v graph.NodeID) error {
	if e.jn == nil || e.replaying {
		return nil
	}
	return e.appendRecord(&JournalRecord{Kind: recordRestore, At: e.now, Query: -1, Node: int64(v)})
}

// Recover rebuilds an engine from a loaded journal: construct it exactly as
// NewEngine would (same problem, same options), load the snapshot if one
// survived, replay the WAL suffix through the ordinary input paths, and
// cross-check every replayed outcome against the recorded one. On success
// the journal in opt (if any) is re-attached so the recovered engine
// continues journaling from where the log ends. A torn tail in st has
// already been dropped by journal.Load — the lost record was never
// acknowledged, so the recovered engine is simply the state before it.
func Recover(p *placement.Problem, expectedArrivals int, opt Options, st *journal.State) (*Engine, error) {
	r, err := NewRehydrator(p, expectedArrivals, opt, st)
	if err != nil {
		return nil, err
	}
	return r.Promote(opt), nil
}

// replayRecord applies one journaled input and verifies the outcome.
func (e *Engine) replayRecord(lsn int64, rec *JournalRecord) error {
	switch rec.Kind {
	case recordOffer:
		dec, err := e.Offer(Arrival{Query: workload.QueryID(rec.Query), AtSec: rec.At, HoldSec: rec.Hold})
		if err != nil {
			return fmt.Errorf("online: replay record %d: %w", lsn, err)
		}
		if rec.Outcome == nil {
			return fmt.Errorf("online: record %d: offer without outcome: %w", lsn, ErrDivergent)
		}
		wantAdmit := rec.Outcome.Event == instrument.EventAdmit
		if dec.Admitted != wantAdmit {
			return fmt.Errorf("online: record %d: query %d replayed admitted=%v, journal says %v: %w",
				lsn, rec.Query, dec.Admitted, wantAdmit, ErrDivergent)
		}
		if wantAdmit {
			if len(dec.Assignments) != len(rec.Outcome.Datasets) {
				return fmt.Errorf("online: record %d: query %d replayed %d assignments, journal has %d: %w",
					lsn, rec.Query, len(dec.Assignments), len(rec.Outcome.Datasets), ErrDivergent)
			}
			for i, asg := range dec.Assignments {
				if int64(asg.Dataset) != rec.Outcome.Datasets[i] || int64(asg.Node) != rec.Outcome.Nodes[i] {
					return fmt.Errorf("online: record %d: query %d demand %d replayed (%d,%d), journal has (%d,%d): %w",
						lsn, rec.Query, i, asg.Dataset, asg.Node, rec.Outcome.Datasets[i], rec.Outcome.Nodes[i], ErrDivergent)
				}
			}
		}
	case recordCrash:
		rep, err := e.Crash(rec.At, graph.NodeID(rec.Node))
		if err != nil {
			return fmt.Errorf("online: replay record %d: %w", lsn, err)
		}
		if rep.LostReplicas != rec.LostReplicas || rep.Repaired != rec.Repaired || len(rep.Evicted) != rec.Evicted {
			return fmt.Errorf("online: record %d: crash of node %d replayed lost=%d repaired=%d evicted=%d, journal has %d/%d/%d: %w",
				lsn, rec.Node, rep.LostReplicas, rep.Repaired, len(rep.Evicted),
				rec.LostReplicas, rec.Repaired, rec.Evicted, ErrDivergent)
		}
	case recordRestore:
		if err := e.Restore(graph.NodeID(rec.Node)); err != nil {
			return fmt.Errorf("online: replay record %d: %w", lsn, err)
		}
	default:
		return fmt.Errorf("online: record %d: unknown kind %q: %w", lsn, rec.Kind, ErrDivergent)
	}
	return nil
}
