// Trace emission for the online engine. Event construction is gated behind
// instrument.TraceActive so Offer stays allocation-free (beyond its own
// planning state) when no sink is attached.
//
// Online capacity is temporal — allocations are released when their hold
// expires — so a replayed trace cannot reconstruct instantaneous load.
// invariant.CheckTrace is therefore run in online mode against these traces
// (capacity-dependent rejection reasons are trusted; deadline and
// disconnection are still recomputed from first principles).
package online

import (
	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/placement"
	"edgerep/internal/workload"
)

// histOnlineQueryDelay is the response delay (max evaluation delay over the
// bundle) of each query admitted online.
var histOnlineQueryDelay = instrument.NewHistogram("online.query_delay_seconds", instrument.DefaultDelayBuckets...)

const traceAlgo = "online"

// beginTrace opens the engine's trace span (no-op without a sink).
func (e *Engine) beginTrace() {
	if !instrument.TraceActive() {
		return
	}
	e.traceRun = instrument.NextTraceRun()
	ev := instrument.NewTraceEvent(instrument.EventBegin, traceAlgo)
	ev.Run = e.traceRun
	ev.Label = instrument.TraceLabel()
	instrument.EmitTrace(&ev)
}

// emitAdmit records one admitted arrival and feeds the delay histogram.
func (e *Engine) emitAdmit(a Arrival, as []placement.Assignment) {
	if instrument.Enabled() {
		worst := 0.0
		for _, asg := range as {
			if delay, ok := e.p.EvalDelay(a.Query, asg.Dataset, asg.Node); ok && delay > worst {
				worst = delay
			}
		}
		if len(as) > 0 {
			histOnlineQueryDelay.Observe(worst)
		}
	}
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventAdmit, traceAlgo)
	ev.Run = e.traceRun
	ev.Query = int64(a.Query)
	for _, asg := range as {
		ev.Datasets = append(ev.Datasets, int64(asg.Dataset))
		ev.Nodes = append(ev.Nodes, int64(asg.Node))
		ev.Volume += e.p.Datasets[asg.Dataset].SizeGB
	}
	e.attachStageNs(&ev)
	instrument.EmitTrace(&ev)
}

// attachStageNs copies the serving layer's in-progress timeline (the prefix
// known at decision time — queue and coalesce; later stages haven't run yet)
// onto a decision event while attribution is active. The JSONL sink drops
// StageNs unless IncludeTimings is set, so this never perturbs the
// byte-identical trace contract.
func (e *Engine) attachStageNs(ev *instrument.TraceEvent) {
	if e.stages == nil || !instrument.AttributionActive() {
		return
	}
	ev.StageNs = append([]int64(nil), e.stages[:]...)
}

// ClassifyRejection attributes a rejection of q to the paper constraint that
// kills it at the engine's *current* instantaneous state (capacity net of
// the configured utilization headroom, the materialized replica layout, and
// liveness). The admission daemon calls it to put a typed reason on the wire
// with every rejected response; emitReject uses the same classification for
// the trace, so the reason an operator sees over HTTP is byte-for-byte the
// reason invariant.CheckTrace replays.
func (e *Engine) ClassifyRejection(q workload.QueryID) (instrument.Reason, workload.DatasetID, graph.NodeID) {
	if e.fast != nil {
		// The precomputed classification tables: same reason, same locus,
		// proven equivalent by TestFastPathEquivalence.
		return e.classifyFast(q)
	}
	maxU := e.opt.maxUtil()
	return placement.ClassifyRejection(e.p, q, placement.RejectionState{
		Avail: func(v graph.NodeID) float64 {
			return e.p.Cloud.Capacity(v)*maxU - e.usedGHz(v)
		},
		HasReplica:   e.sol.HasReplica,
		ReplicaCount: e.sol.ReplicaCount,
		Down:         e.downPredicate(),
	})
}

// emitReject classifies the rejected arrival against the instantaneous load
// and records the typed reason.
func (e *Engine) emitReject(a Arrival) {
	if !instrument.TraceActive() {
		return
	}
	reason, ds, node := e.ClassifyRejection(a.Query)
	ev := instrument.NewTraceEvent(instrument.EventReject, traceAlgo)
	ev.Run = e.traceRun
	ev.Query = int64(a.Query)
	ev.Reason = reason
	ev.Dataset = int64(ds)
	ev.Node = int64(node)
	e.attachStageNs(&ev)
	instrument.EmitTrace(&ev)
}

// downPredicate exposes liveness to rejection classification; nil (the
// pre-failover contract) when no node has ever crashed.
func (e *Engine) downPredicate() func(graph.NodeID) bool {
	if e.live == nil {
		return nil
	}
	return e.live.IsDown
}

// emitCrash records a node failure: Node is the crashed node, Volume the
// demanded volume of the admissions it was serving at that instant.
func (e *Engine) emitCrash(v graph.NodeID, affectedVolume float64) {
	if fr := instrument.CurrentFlightRecorder(); fr != nil {
		fr.RecordEvent(instrument.EventCrash, -1, int64(v), instrument.ReasonNodeCrashed)
	}
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventCrash, traceAlgo)
	ev.Run = e.traceRun
	ev.Node = int64(v)
	ev.Volume = affectedVolume
	instrument.EmitTrace(&ev)
}

// emitRepair records one stranded assignment re-pointed at node w.
func (e *Engine) emitRepair(q workload.QueryID, n workload.DatasetID, w graph.NodeID) {
	if fr := instrument.CurrentFlightRecorder(); fr != nil {
		fr.RecordEvent(instrument.EventRepair, int64(q), int64(w), instrument.ReasonRepaired)
	}
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventRepair, traceAlgo)
	ev.Run = e.traceRun
	ev.Query = int64(q)
	ev.Dataset = int64(n)
	ev.Node = int64(w)
	ev.Reason = instrument.ReasonRepaired
	instrument.EmitTrace(&ev)
}

// emitEvict records an admitted query given up after a crash; Volume is the
// demanded volume handed back.
func (e *Engine) emitEvict(q workload.QueryID, vol float64) {
	if fr := instrument.CurrentFlightRecorder(); fr != nil {
		fr.RecordEvent(instrument.EventEvict, int64(q), -1, instrument.ReasonNodeCrashed)
	}
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventEvict, traceAlgo)
	ev.Run = e.traceRun
	ev.Query = int64(q)
	ev.Reason = instrument.ReasonNodeCrashed
	ev.Volume = vol
	instrument.EmitTrace(&ev)
}

// EmitRetryExhausted records that the driver gave up re-offering a rejected
// query: the retry backoffs have consumed its DeadlineSec budget. Emitted by
// admission-retry loops (ext-chaos), not by Offer itself — the engine sees
// each re-offer as an ordinary arrival.
func (e *Engine) EmitRetryExhausted(q workload.QueryID) {
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventReject, traceAlgo)
	ev.Run = e.traceRun
	ev.Query = int64(q)
	ev.Reason = instrument.ReasonRetryExhausted
	instrument.EmitTrace(&ev)
}

// EmitEnd closes the engine's trace span with the volume admitted so far.
// Drivers call it once the arrival stream is exhausted; further Offers are
// still legal but will not re-open the span.
func (e *Engine) EmitEnd() {
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventEnd, traceAlgo)
	ev.Run = e.traceRun
	ev.Volume = e.res.VolumeAdmitted
	instrument.EmitTrace(&ev)
}
