// Trace emission for the online engine. Event construction is gated behind
// instrument.TraceActive so Offer stays allocation-free (beyond its own
// planning state) when no sink is attached.
//
// Online capacity is temporal — allocations are released when their hold
// expires — so a replayed trace cannot reconstruct instantaneous load.
// invariant.CheckTrace is therefore run in online mode against these traces
// (capacity-dependent rejection reasons are trusted; deadline and
// disconnection are still recomputed from first principles).
package online

import (
	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/placement"
)

// histOnlineQueryDelay is the response delay (max evaluation delay over the
// bundle) of each query admitted online.
var histOnlineQueryDelay = instrument.NewHistogram("online.query_delay_seconds", instrument.DefaultDelayBuckets...)

const traceAlgo = "online"

// beginTrace opens the engine's trace span (no-op without a sink).
func (e *Engine) beginTrace() {
	if !instrument.TraceActive() {
		return
	}
	e.traceRun = instrument.NextTraceRun()
	ev := instrument.NewTraceEvent(instrument.EventBegin, traceAlgo)
	ev.Run = e.traceRun
	ev.Label = instrument.TraceLabel()
	instrument.EmitTrace(&ev)
}

// emitAdmit records one admitted arrival and feeds the delay histogram.
func (e *Engine) emitAdmit(a Arrival, as []placement.Assignment) {
	if instrument.Enabled() {
		worst := 0.0
		for _, asg := range as {
			if delay, ok := e.p.EvalDelay(a.Query, asg.Dataset, asg.Node); ok && delay > worst {
				worst = delay
			}
		}
		if len(as) > 0 {
			histOnlineQueryDelay.Observe(worst)
		}
	}
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventAdmit, traceAlgo)
	ev.Run = e.traceRun
	ev.Query = int64(a.Query)
	for _, asg := range as {
		ev.Datasets = append(ev.Datasets, int64(asg.Dataset))
		ev.Nodes = append(ev.Nodes, int64(asg.Node))
		ev.Volume += e.p.Datasets[asg.Dataset].SizeGB
	}
	instrument.EmitTrace(&ev)
}

// emitReject classifies the rejected arrival against the instantaneous load
// and records the typed reason.
func (e *Engine) emitReject(a Arrival) {
	if !instrument.TraceActive() {
		return
	}
	maxU := e.opt.maxUtil()
	reason, ds, node := placement.ClassifyRejection(e.p, a.Query, placement.RejectionState{
		Avail: func(v graph.NodeID) float64 {
			return e.p.Cloud.Capacity(v)*maxU - e.used[v]
		},
		HasReplica:   e.sol.HasReplica,
		ReplicaCount: e.sol.ReplicaCount,
	})
	ev := instrument.NewTraceEvent(instrument.EventReject, traceAlgo)
	ev.Run = e.traceRun
	ev.Query = int64(a.Query)
	ev.Reason = reason
	ev.Dataset = int64(ds)
	ev.Node = int64(node)
	instrument.EmitTrace(&ev)
}

// EmitEnd closes the engine's trace span with the volume admitted so far.
// Drivers call it once the arrival stream is exhausted; further Offers are
// still legal but will not re-open the span.
func (e *Engine) EmitEnd() {
	if !instrument.TraceActive() {
		return
	}
	ev := instrument.NewTraceEvent(instrument.EventEnd, traceAlgo)
	ev.Run = e.traceRun
	ev.Volume = e.res.VolumeAdmitted
	instrument.EmitTrace(&ev)
}
