// Warm-standby rehydration: the federation follower's side of WAL shipping.
// Recover replays a finished journal in one shot; a standby instead replays
// an *open-ended* stream — records keep arriving as the leader ships sealed
// segments — and must be promotable at any cut. Rehydrator wraps an Engine
// held in replay mode: Apply feeds it one journaled record at a time (with
// the same outcome cross-check as Recover, so a diverging leader is caught
// at the follower, not at failover), and Promote flips it into a live,
// journaling engine exactly once, at takeover.

package online

import (
	"encoding/json"
	"fmt"

	"edgerep/internal/journal"
	"edgerep/internal/placement"
)

// Rehydrator is an engine held in replay mode, absorbing journal records as
// they are shipped. Not safe for concurrent use; the standby's sync loop is
// the single writer, and anyone reading the engine's state must hold the
// same loop still (the federation Standby serializes with a mutex).
type Rehydrator struct {
	e   *Engine
	lsn int64 // LSN of the last applied record
}

// NewRehydrator builds a standby engine from a loaded journal prefix: the
// engine is constructed exactly as NewEngine would, the snapshot (if any) is
// loaded, every record in st is replayed with outcome cross-checks, and the
// engine is left in replay mode awaiting Apply calls. st may be empty — a
// follower bootstrapping from nothing starts at LSN 0.
func NewRehydrator(p *placement.Problem, expectedArrivals int, opt Options, st *journal.State) (*Rehydrator, error) {
	stripped := opt
	stripped.Journal = nil
	e := NewEngine(p, expectedArrivals, stripped)
	e.replaying = true
	r := &Rehydrator{e: e}
	if st.Snapshot != nil {
		var dump EngineState
		if err := json.Unmarshal(st.Snapshot, &dump); err != nil {
			return nil, fmt.Errorf("online: decode snapshot at LSN %d: %w", st.SnapshotLSN, err)
		}
		e.loadState(&dump)
		r.lsn = st.SnapshotLSN
	}
	for i := r.lsn; i < int64(len(st.Records)); i++ {
		if err := r.Apply(st.Records[i]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Apply replays one journaled record (a raw WAL payload) through the
// ordinary input paths and cross-checks the recorded outcome; ErrDivergent
// means the shipped history does not match this replica's deterministic
// replay and the standby must not be promoted.
func (r *Rehydrator) Apply(payload []byte) error {
	var rec JournalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("online: decode journal record %d: %w", r.lsn+1, err)
	}
	if err := r.e.replayRecord(r.lsn+1, &rec); err != nil {
		return err
	}
	r.lsn++
	return nil
}

// LSN returns the log sequence number of the last applied record — the
// standby's replication position, which the lag gauge compares against the
// leader's.
func (r *Rehydrator) LSN() int64 { return r.lsn }

// Engine exposes the standby engine for read-only inspection (state dumps,
// decision counts). Mutating it directly would desynchronize the replica;
// only Apply and Promote may advance it.
func (r *Rehydrator) Engine() *Engine { return r.e }

// Promote ends replay and returns the engine live: journaling to
// opt.Journal with opt.SnapshotEvery cadence, exactly as a Recover-ed
// engine would continue. The Rehydrator must not be used after Promote.
func (r *Rehydrator) Promote(opt Options) *Engine {
	r.e.replaying = false
	r.e.jn = opt.Journal
	r.e.snapEvery = opt.SnapshotEvery
	return r.e
}
