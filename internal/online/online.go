// Package online extends the paper's proactive (offline) placement to the
// dynamic setting its §2.4 gestures at: queries arrive over time, hold their
// computing allocation only while executing, and must be admitted or
// rejected irrevocably on arrival. Replicas are still placed proactively —
// either by the offline coverage phase over a forecast workload, or lazily
// up to the K bound — and the admission decision reuses the same dual
// prices as internal/core, evaluated against the *instantaneous* load.
//
// This is the classic online primal-dual packing setting, where the
// exponential capacity price θ(u) = (c^u − 1)/(c − 1) with c = 1 + T (T =
// expected number of arrivals) yields the known O(log T) competitiveness
// for packing; the engine exposes the price base so the ablation bench can
// sweep it.
package online

import (
	"container/heap"
	"fmt"
	"math"

	"edgerep/internal/cluster"
	"edgerep/internal/consistency"
	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/journal"
	"edgerep/internal/placement"
	"edgerep/internal/workload"
)

// Arrival is one query arriving at a point in time. HoldSec is how long its
// allocation is held (the evaluation duration); zero means hold forever
// (degenerates to the offline capacity model).
type Arrival struct {
	Query   workload.QueryID
	AtSec   float64
	HoldSec float64
}

// Options tunes the online engine.
type Options struct {
	// PriceBase is c in the capacity price; zero means 1 + number of
	// arrivals.
	PriceBase float64
	// DelayPriceWeight scales the deadline-slack price; zero means 0.15.
	DelayPriceWeight float64
	// Forecast, when non-nil, is the workload used to pre-place preferred
	// replica sites (the proactive phase run on a forecast instead of the
	// actual arrivals). Nil means fully lazy replication.
	Forecast []workload.Query
	// MaxUtilization rejects any admission that would push a node above
	// this fraction of capacity; zero means 1.0 (no headroom reserved).
	MaxUtilization float64
	// NoRepair disables failover repair: a crash evicts every query the
	// node was serving instead of re-replicating. The ablation baseline
	// the ext-chaos experiment compares repair against.
	NoRepair bool
	// Journal, when non-nil, makes the engine durable: every Offer, Crash,
	// and Restore is appended to the WAL with its committed outcome before
	// the call returns (durable.go; recover with online.Recover).
	Journal *journal.Journal
	// SnapshotEvery takes a full EngineState snapshot after every Nth
	// journaled record, bounding replay length; zero means WAL-only.
	SnapshotEvery int
	// NoFastPath disables the precomputed admission tables (fastpath.go)
	// and plans every offer with the original scan over the delay model.
	// The zero value — fast path on — is the production configuration; the
	// slow path exists as the byte-identity oracle the equivalence tests
	// and the -fastpath=false escape hatch exercise.
	NoFastPath bool
}

func (o Options) priceBase(n int) float64 {
	if o.PriceBase > 0 {
		return o.PriceBase
	}
	return 1 + float64(n)
}

func (o Options) delayWeight() float64 {
	if o.DelayPriceWeight > 0 {
		return o.DelayPriceWeight
	}
	return 0.15
}

func (o Options) maxUtil() float64 {
	if o.MaxUtilization > 0 {
		return o.MaxUtilization
	}
	return 1.0
}

// Decision records the outcome for one arrival.
type Decision struct {
	Query    workload.QueryID
	Admitted bool
	// Assignments is per-demand, set when admitted.
	Assignments []placement.Assignment
}

// Result summarizes an online run.
type Result struct {
	Decisions []Decision
	// VolumeAdmitted is the objective achieved online.
	VolumeAdmitted float64
	Admitted       int
	Rejected       int
	// PeakUtilization is the highest instantaneous node utilization seen.
	PeakUtilization float64
	// Evicted counts previously admitted queries given up after a node
	// crash left them unservable (failover.go); their volume has already
	// been subtracted from VolumeAdmitted.
	Evicted int
}

// release is a scheduled capacity release. Query and dataset identify the
// allocation's owner so failover can move or drop in-flight holds when the
// node crashes.
type release struct {
	at      float64
	node    graph.NodeID
	amt     float64
	query   workload.QueryID
	dataset workload.DatasetID
}

type releaseHeap []release

func (h releaseHeap) Len() int            { return len(h) }
func (h releaseHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h releaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x interface{}) { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// Engine processes arrivals one at a time.
type Engine struct {
	p    *placement.Problem
	opt  Options
	base float64

	// used is the sharded atomic capacity ledger (capshard.go); all
	// mutations go through setUsed/addUsed so the θ cache stays coherent.
	used     *capLedger
	releases releaseHeap
	now      float64

	// thetaVal/thetaFresh cache θ(v) between load changes: theta is the
	// only math.Pow on the admission hot path, and one offer can price the
	// same node once per demand.
	thetaVal   []float64
	thetaFresh []bool

	// fast holds the precomputed admission tables (fastpath.go); nil when
	// Options.NoFastPath selects the original planning scan.
	fast *fastPath

	sol  *placement.Solution
	res  Result
	peak float64

	// preferredSites are the forecast-derived proactive sites; replicas at
	// a preferred site open at zero µ price.
	preferredSites map[workload.DatasetID]map[graph.NodeID]bool

	// traceRun identifies this engine's span in emitted trace events
	// (trace.go).
	traceRun int64

	// live tracks crashed nodes (failover.go); nil until the first crash
	// or AttachLiveness, so fault-free runs take zero extra branches per
	// candidate beyond one nil check.
	live *cluster.Liveness
	// cons, when attached, accounts re-replication traffic for repairs.
	cons *consistency.Manager

	// jn and snapEvery make the engine durable (durable.go); replaying is
	// set while Recover drives the input paths from the journal so they do
	// not re-journal themselves.
	jn        *journal.Journal
	snapEvery int
	replaying bool

	// stages, when attached, is the serving layer's in-progress latency
	// timeline for the arrival currently being offered (the epoch loop is
	// single-writer, so a plain pointer suffices); emitAdmit/emitReject copy
	// the prefix known at decision time into the trace event's StageNs while
	// attribution is active. lastJournalNs/lastSyncNs record the duration of
	// the last Offer's journal append and its fsync share, measured via the
	// sanctioned monotonic clock only while attribution is active.
	stages        *instrument.StageTimeline
	lastJournalNs int64
	lastSyncNs    int64
	// lastLookupNs records the last Offer's epoch-fence duration (the
	// fast-path staleness check plus any mirror refresh), zero unless
	// attribution was active.
	lastLookupNs int64
}

// NewEngine builds an online engine over a placement problem. The problem's
// query list is the universe arrivals refer into; replica bookkeeping and
// the K bound come from the problem.
func NewEngine(p *placement.Problem, expectedArrivals int, opt Options) *Engine {
	top := p.Cloud.Topology()
	e := &Engine{
		p:          p,
		opt:        opt,
		base:       opt.priceBase(expectedArrivals),
		used:       newCapLedger(top),
		thetaVal:   make([]float64, top.Graph.NumNodes()),
		thetaFresh: make([]bool, top.Graph.NumNodes()),
		sol:        placement.NewSolution(),
		jn:         opt.Journal,
		snapEvery:  opt.SnapshotEvery,
	}
	if opt.Forecast != nil {
		e.prePlace(opt.Forecast)
	}
	// Tables are built after prePlace: the preferred-site set they bake in
	// is frozen from here on.
	if !opt.NoFastPath {
		e.fast = newFastPath(e)
	}
	e.beginTrace()
	return e
}

// prePlace derives preferred sites from the forecast with the same
// capacity-capped volume-weighted maximum-coverage rule as the offline
// proactive phase (internal/core); replicas still materialize lazily.
func (e *Engine) prePlace(forecast []workload.Query) {
	type demandRef struct {
		qi, di int
		need   float64
	}
	perDataset := make(map[workload.DatasetID][]demandRef)
	for qi := range forecast {
		q := &forecast[qi]
		for di, dm := range q.Demands {
			need := e.p.Datasets[dm.Dataset].SizeGB * q.ComputePerGB
			perDataset[dm.Dataset] = append(perDataset[dm.Dataset], demandRef{qi, di, need})
		}
	}
	feasible := func(d demandRef, ds workload.DatasetID, v graph.NodeID) bool {
		q := &forecast[d.qi]
		delay, ok := e.evalDelayForecast(q, q.Demands[d.di], v)
		return ok && delay <= q.DeadlineSec
	}
	claimed := make(map[graph.NodeID]float64)
	e.preferredSites = make(map[workload.DatasetID]map[graph.NodeID]bool)
	for n := range e.p.Datasets {
		ds := workload.DatasetID(n)
		demands := perDataset[ds]
		if len(demands) == 0 {
			continue
		}
		covered := make([]bool, len(demands))
		for slot := 0; slot < e.p.MaxReplicas; slot++ {
			var bestNode graph.NodeID = -1
			bestEff := 0.0
			for _, v := range e.p.Cloud.ComputeNodes() {
				if e.preferredSites[ds][v] {
					continue
				}
				cover := 0.0
				for i, d := range demands {
					if !covered[i] && feasible(d, ds, v) {
						cover += d.need
					}
				}
				if cover <= 0 {
					continue
				}
				eff := math.Min(cover, e.p.Cloud.Capacity(v)-claimed[v])
				if eff > bestEff {
					bestNode, bestEff = v, eff
				}
			}
			if bestNode == -1 || bestEff <= 0 {
				break
			}
			if e.preferredSites[ds] == nil {
				e.preferredSites[ds] = make(map[graph.NodeID]bool)
			}
			e.preferredSites[ds][bestNode] = true
			budget := e.p.Cloud.Capacity(bestNode) - claimed[bestNode]
			marked := 0.0
			for i, d := range demands {
				if covered[i] || !feasible(d, ds, bestNode) {
					continue
				}
				if marked+d.need > budget && marked > 0 {
					break
				}
				covered[i] = true
				marked += d.need
			}
			claimed[bestNode] += marked
		}
	}
}

// evalDelayForecast evaluates the model delay for a forecast query that may
// not be part of the problem's query list.
func (e *Engine) evalDelayForecast(q *workload.Query, dm workload.Demand, v graph.NodeID) (float64, bool) {
	size := e.p.Datasets[dm.Dataset].SizeGB
	proc := size * e.p.Cloud.ProcDelayPerGB(v)
	trans := size * dm.Selectivity * e.p.Cloud.TransferDelayPerGB(v, q.Home)
	return proc + trans, true
}

// theta prices node v at the current instantaneous utilization. The value
// is cached until v's allocation changes (setUsed/addUsed invalidate), so
// pricing many candidates between load changes pays one math.Pow per node;
// the cached value is the bit-exact result of the same expression.
func (e *Engine) theta(v graph.NodeID) float64 {
	if e.thetaFresh[v] {
		return e.thetaVal[v]
	}
	capGHz := e.p.Cloud.Capacity(v)
	t := math.Inf(1)
	if capGHz > 0 {
		u := e.usedGHz(v) / capGHz
		t = (math.Pow(e.base, u) - 1) / (e.base - 1)
	}
	e.thetaVal[v] = t
	e.thetaFresh[v] = true
	return t
}

// usedGHz reads node v's instantaneous allocation from the ledger.
func (e *Engine) usedGHz(v graph.NodeID) float64 { return e.used.get(v) }

// setUsed overwrites node v's allocation and invalidates its θ cache entry.
// Every used-mutation in the engine funnels through setUsed/addUsed — that
// centralization is what keeps the cached prices coherent with the ledger.
func (e *Engine) setUsed(v graph.NodeID, ghz float64) {
	e.used.set(v, ghz)
	e.thetaFresh[v] = false
}

// addUsed adjusts node v's allocation by delta and returns the new value.
func (e *Engine) addUsed(v graph.NodeID, delta float64) float64 {
	n := e.used.get(v) + delta
	e.used.set(v, n)
	e.thetaFresh[v] = false
	return n
}

// resetUsed zeroes the whole ledger (bulk state load).
func (e *Engine) resetUsed() {
	e.used.reset()
	for i := range e.thetaFresh {
		e.thetaFresh[i] = false
	}
}

// Offer processes one arrival and returns its decision. Arrivals must be
// offered in non-decreasing time order.
func (e *Engine) Offer(a Arrival) (Decision, error) {
	if int(a.Query) < 0 || int(a.Query) >= len(e.p.Queries) {
		return Decision{}, fmt.Errorf("online: unknown query %d", a.Query)
	}
	if a.AtSec < e.now {
		return Decision{}, fmt.Errorf("online: arrival at %.3fs before current time %.3fs", a.AtSec, e.now)
	}
	e.now = a.AtSec
	e.drainReleases()

	q := &e.p.Queries[a.Query]
	// Plan each demand against instantaneous load; all-or-nothing. The
	// lookup stage is the fast path's epoch fence — the staleness check on
	// the precomputed tables' liveness mirror plus any refresh an
	// invalidation forced — timed only while attribution is active, like
	// the journal stages.
	e.lastLookupNs = 0
	var admitted bool
	var as []placement.Assignment
	if e.fast != nil {
		if instrument.AttributionActive() {
			lt := instrument.Mono()
			e.fast.refresh(e)
			e.lastLookupNs = int64(instrument.Mono() - lt)
		}
		admitted, as = e.planFast(a.Query)
	} else {
		admitted, as = e.planSlow(a.Query)
	}

	dec := Decision{Query: a.Query, Admitted: admitted}
	if admitted {
		dec.Assignments = as
		for _, asg := range as {
			need := e.p.ComputeNeed(a.Query, asg.Dataset)
			if u := e.addUsed(asg.Node, need) / e.p.Cloud.Capacity(asg.Node); u > e.peak {
				e.peak = u
			}
			e.sol.AddReplica(asg.Dataset, asg.Node)
			// Hold-forever allocations (HoldSec 0) get a release at +Inf:
			// it never drains, but failover can still see the hold is live
			// and move it with full capacity accounting.
			expiry := math.Inf(1)
			if a.HoldSec > 0 {
				expiry = a.AtSec + a.HoldSec
			}
			e.pushRelease(release{at: expiry, node: asg.Node, amt: need, query: a.Query, dataset: asg.Dataset})
		}
		e.sol.Admit(a.Query, as)
		e.res.Admitted++
		e.res.VolumeAdmitted += q.DemandedVolume(e.p.Datasets)
		e.emitAdmit(a, as)
	} else {
		e.res.Rejected++
		e.emitReject(a)
	}
	e.res.Decisions = append(e.res.Decisions, dec)
	if !instrument.AttributionActive() {
		if err := e.journalOffer(a, dec); err != nil {
			return dec, err
		}
		return dec, nil
	}
	jStart := instrument.Mono()
	err := e.journalOffer(a, dec)
	e.lastJournalNs = int64(instrument.Mono() - jStart)
	e.lastSyncNs = 0
	if e.jn != nil && !e.replaying {
		e.lastSyncNs = e.jn.LastSyncNs()
	}
	if err != nil {
		return dec, err
	}
	return dec, nil
}

// AttachStages points the engine at the serving layer's in-progress stage
// timeline for subsequent Offers (nil detaches). While attribution is
// active, admit/reject trace events carry a copy of the timeline's known
// prefix, so a traced decision links to its critical path.
func (e *Engine) AttachStages(t *instrument.StageTimeline) { e.stages = t }

// LastOfferJournalNs returns the journal-append duration of the most recent
// Offer and the fsync share within it — both zero unless attribution was
// active during the call. The serving layer uses the pair to split a
// decision's journal stage from its fsync stage.
func (e *Engine) LastOfferJournalNs() (journalNs, syncNs int64) {
	return e.lastJournalNs, e.lastSyncNs
}

// LastOfferLookupNs returns the duration of the most recent Offer's table
// lookup fence — zero unless attribution was active (or the engine runs
// the slow path, which has no tables to fence).
func (e *Engine) LastOfferLookupNs() int64 { return e.lastLookupNs }

// planSlow is the original planning loop — a full scan over the compute
// nodes through the delay model, per demand. It is kept verbatim as the
// fast path's oracle: the equivalence and byte-identity tests run both
// paths over identical streams and require identical decisions.
func (e *Engine) planSlow(qid workload.QueryID) (bool, []placement.Assignment) {
	q := &e.p.Queries[qid]
	tentative := make(map[graph.NodeID]float64)
	tentOpen := make(map[workload.DatasetID]map[graph.NodeID]bool)
	var as []placement.Assignment
	for _, dm := range q.Demands {
		v, ok := e.pickNode(qid, dm, tentative, tentOpen)
		if !ok {
			return false, nil
		}
		need := e.p.ComputeNeed(qid, dm.Dataset)
		tentative[v] += need
		if !e.sol.HasReplica(dm.Dataset, v) {
			m := tentOpen[dm.Dataset]
			if m == nil {
				m = make(map[graph.NodeID]bool)
				tentOpen[dm.Dataset] = m
			}
			m[v] = true
		}
		as = append(as, placement.Assignment{Query: qid, Dataset: dm.Dataset, Node: v})
	}
	return true, as
}

// pickNode selects the cheapest feasible node for one demand under the
// instantaneous dual prices.
func (e *Engine) pickNode(q workload.QueryID, dm workload.Demand,
	tentative map[graph.NodeID]float64, tentOpen map[workload.DatasetID]map[graph.NodeID]bool) (graph.NodeID, bool) {

	need := e.p.ComputeNeed(q, dm.Dataset)
	size := e.p.Datasets[dm.Dataset].SizeGB
	deadline := e.p.Queries[q].DeadlineSec
	openCount := e.sol.ReplicaCount(dm.Dataset) + len(tentOpen[dm.Dataset])
	maxU := e.opt.maxUtil()

	var best graph.NodeID = -1
	bestCost := math.Inf(1)
	for _, v := range e.p.Cloud.ComputeNodes() {
		if e.live != nil && e.live.IsDown(v) {
			continue
		}
		delay, ok := e.p.EvalDelay(q, dm.Dataset, v)
		if !ok || delay > deadline {
			continue
		}
		capGHz := e.p.Cloud.Capacity(v)
		if e.usedGHz(v)+tentative[v]+need > capGHz*maxU+1e-9 {
			continue
		}
		has := e.sol.HasReplica(dm.Dataset, v) || tentOpen[dm.Dataset][v]
		rep := 0.0
		if !has {
			if openCount >= e.p.MaxReplicas {
				continue
			}
			if e.preferredSites == nil || !e.preferredSites[dm.Dataset][v] {
				rep = 0.25 * size * float64(openCount+1) / float64(e.p.MaxReplicas)
			}
		}
		cost := need*e.theta(v) + e.opt.delayWeight()*size*(delay/deadline) + rep
		if cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best, best != -1
}

// drainReleases gives back every allocation whose hold expired by e.now.
func (e *Engine) drainReleases() {
	for len(e.releases) > 0 && e.releases[0].at <= e.now {
		r := heap.Pop(&e.releases).(release)
		if e.addUsed(r.node, -r.amt) < 0 {
			e.setUsed(r.node, 0)
		}
	}
}

// pushRelease schedules a capacity release.
func (e *Engine) pushRelease(r release) { heap.Push(&e.releases, r) }

// reheapReleases restores heap order after failover filtered the slice
// in place.
func (e *Engine) reheapReleases() { heap.Init(&e.releases) }

// Result returns the accumulated run summary.
func (e *Engine) Result() Result {
	r := e.res
	r.PeakUtilization = e.peak
	return r
}

// Solution returns the replica layout and admissions so far. With
// HoldSec > 0 arrivals the capacity constraint is temporal, so the offline
// validator's capacity check does not apply; replica and deadline
// constraints still hold.
func (e *Engine) Solution() *placement.Solution { return e.sol }
