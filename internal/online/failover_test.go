package online_test

import (
	"math"
	"reflect"
	"testing"

	"edgerep/internal/consistency"
	"edgerep/internal/graph"
	"edgerep/internal/invariant"
	"edgerep/internal/online"
	"edgerep/internal/workload"
)

// runAll offers every query at 10s spacing with the given hold and returns
// the engine.
func runAll(t *testing.T, seed int64, nq int, holdSec float64) (*online.Engine, *workload.Workload) {
	t.Helper()
	p, w := online.NewTestProblem(t, seed, nq)
	e := online.NewEngine(p, len(w.Queries), online.Options{})
	for i := range w.Queries {
		if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i) * 10, HoldSec: holdSec}); err != nil {
			t.Fatal(err)
		}
	}
	return e, w
}

// busiestNode returns the node serving the most assignments in the solution.
func busiestNode(e *online.Engine) graph.NodeID {
	count := make(map[graph.NodeID]int)
	for _, a := range e.Solution().Assignments {
		count[a.Node]++
	}
	best, bestN := graph.NodeID(-1), 0
	for _, v := range e.TestProblem().Cloud.ComputeNodes() {
		if count[v] > bestN {
			best, bestN = v, count[v]
		}
	}
	return best
}

func admittedVolume(e *online.Engine) float64 {
	vol := 0.0
	for _, q := range e.Solution().Admitted {
		vol += e.TestProblem().Queries[q].DemandedVolume(e.TestProblem().Datasets)
	}
	return vol
}

func TestCrashReleasesNodeState(t *testing.T) {
	e, _ := runAll(t, 11, 40, 0)
	v := busiestNode(e)
	if v == -1 {
		t.Fatal("no assignments")
	}
	usedBefore := e.TestUsedGHz(v)
	if usedBefore <= 0 {
		t.Fatalf("busiest node %d has no load", v)
	}
	rep, err := e.Crash(1e6, v)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Liveness().IsDown(v) {
		t.Fatal("node not marked down")
	}
	if e.TestUsedGHz(v) != 0 {
		t.Fatalf("crashed node still has %v GHz allocated", e.TestUsedGHz(v))
	}
	if rep.ReleasedGHz != usedBefore {
		t.Fatalf("released %v GHz, node held %v", rep.ReleasedGHz, usedBefore)
	}
	if rep.LostReplicas == 0 {
		t.Fatal("busiest node lost no replicas")
	}
	for n := range e.Solution().Replicas {
		if e.Solution().HasReplica(n, v) {
			t.Fatalf("dataset %d still has a replica on the crashed node", n)
		}
	}
	for _, a := range e.Solution().Assignments {
		if a.Node == v {
			t.Fatalf("assignment %+v still points at the crashed node", a)
		}
	}
	for _, n := range e.TestReleaseNodes() {
		if n == v {
			t.Fatalf("release still scheduled on the crashed node %d", n)
		}
	}
	// Crashing an already-down node is a no-op.
	rep2, err := e.Crash(1e6, v)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ReleasedGHz != 0 || rep2.LostReplicas != 0 || len(rep2.AffectedQueries) != 0 {
		t.Fatalf("second crash of the same node did work: %+v", rep2)
	}
}

func TestCrashRepairKeepsPaperInvariants(t *testing.T) {
	// Hold-forever run: the offline capacity model applies, so the
	// repaired solution must still satisfy every ILP constraint —
	// capacity (2), replica presence (3), deadline (4), K bound (5).
	e, _ := runAll(t, 12, 40, 0)
	v := busiestNode(e)
	rep, err := e.Crash(1e6, v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired == 0 && len(rep.Evicted) == 0 {
		t.Fatal("crash of the busiest node affected nothing")
	}
	if err := e.Solution().Validate(e.TestProblem()); err != nil {
		t.Fatalf("post-repair solution fails validation: %v", err)
	}
	if err := invariant.CheckSolution(e.TestProblem(), e.Solution(), e.Result().VolumeAdmitted); err != nil {
		t.Fatalf("post-repair solution violates paper invariants: %v", err)
	}
	if got, want := e.Result().VolumeAdmitted, admittedVolume(e); math.Abs(got-want) > 1e-6 {
		t.Fatalf("VolumeAdmitted %v but surviving admissions sum to %v", got, want)
	}
}

func TestCrashEvictsWhenNoSurvivorCanServe(t *testing.T) {
	e, _ := runAll(t, 13, 30, 0)
	if len(e.Solution().Admitted) == 0 {
		t.Fatal("nothing admitted")
	}
	q := e.Solution().Admitted[0]
	// Crash every node that could feasibly serve any of q's demands; the
	// final crash must evict it.
	feasible := make(map[graph.NodeID]bool)
	for _, dm := range e.TestProblem().Queries[q].Demands {
		for _, v := range e.TestProblem().FeasibleNodes(q, dm.Dataset) {
			feasible[v] = true
		}
	}
	at := 1e6
	for _, v := range e.TestProblem().Cloud.ComputeNodes() {
		if feasible[v] {
			if _, err := e.Crash(at, v); err != nil {
				t.Fatal(err)
			}
			at++
		}
	}
	if e.Solution().IsAdmitted(q) {
		t.Fatalf("query %d still admitted with every feasible node down", q)
	}
	if e.Result().Evicted == 0 {
		t.Fatal("no eviction recorded")
	}
	if got, want := e.Result().VolumeAdmitted, admittedVolume(e); math.Abs(got-want) > 1e-6 {
		t.Fatalf("VolumeAdmitted %v but surviving admissions sum to %v", got, want)
	}
}

func TestCrashedNodeNotUsedForNewArrivals(t *testing.T) {
	p, w := online.NewTestProblem(t, 14, 60)
	e := online.NewEngine(p, len(w.Queries), online.Options{})
	half := len(w.Queries) / 2
	for i := 0; i < half; i++ {
		if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	v := busiestNode(e)
	if _, err := e.Crash(float64(half)*10, v); err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(w.Queries); i++ {
		dec, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i) * 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range dec.Assignments {
			if a.Node == v {
				t.Fatalf("arrival %d assigned to crashed node %d", i, v)
			}
		}
	}
	// After restore the node is eligible again (it may or may not win).
	if err := e.Restore(v); err != nil {
		t.Fatal(err)
	}
	if e.Liveness().IsDown(v) {
		t.Fatal("restore left the node down")
	}
}

func TestCrashDeterministic(t *testing.T) {
	run := func() (online.CrashReport, online.Result) {
		e, _ := runAll(t, 15, 40, 0)
		rep, err := e.Crash(1e6, busiestNode(e))
		if err != nil {
			t.Fatal(err)
		}
		return rep, e.Result()
	}
	rep1, res1 := run()
	rep2, res2 := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("crash reports differ:\n%+v\n%+v", rep1, rep2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("results differ:\n%+v\n%+v", res1, res2)
	}
}

func TestRepairAccountsConsistencyResync(t *testing.T) {
	e, _ := runAll(t, 16, 40, 0)
	m, err := consistency.NewManager(e.TestProblem().Cloud.Topology(), e.TestProblem().Datasets, e.Solution(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.AttachConsistency(m)
	// Crash nodes until a repair has to open a fresh replica.
	var rep online.CrashReport
	at := 1e6
	for _, v := range e.TestProblem().Cloud.ComputeNodes() {
		r, err := e.Crash(at, v)
		if err != nil {
			t.Fatal(err)
		}
		at++
		rep.NewReplicas += r.NewReplicas
		rep.ResyncGB += r.ResyncGB
		rep.ResyncCostGBSec += r.ResyncCostGBSec
		if rep.NewReplicas > 0 {
			break
		}
	}
	if rep.NewReplicas == 0 {
		t.Fatal("no repair opened a fresh replica; scenario too weak")
	}
	if rep.ResyncGB <= 0 {
		t.Fatalf("fresh replicas opened (%d) but no resync volume accounted", rep.NewReplicas)
	}
	if len(m.Events()) == 0 {
		t.Fatal("consistency manager recorded no resync events")
	}
}

func TestCrashActiveHoldsMoveCapacity(t *testing.T) {
	// Short holds, then crash while holds are live: the repaired
	// allocations must re-appear as load on surviving nodes and drain at
	// the original expiry.
	p, w := online.NewTestProblem(t, 17, 30)
	e := online.NewEngine(p, len(w.Queries), online.Options{})
	for i := range w.Queries {
		// All arrive close together with long holds so most are live.
		if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i), HoldSec: 1e5}); err != nil {
			t.Fatal(err)
		}
	}
	v := busiestNode(e)
	totalBefore := 0.0
	for _, u := range e.TestProblem().Cloud.ComputeNodes() {
		totalBefore += e.TestUsedGHz(u)
	}
	rep, err := e.Crash(float64(len(w.Queries)), v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReleasedGHz <= 0 {
		t.Fatal("no live allocation on the busiest node")
	}
	totalAfter := 0.0
	for _, u := range e.TestProblem().Cloud.ComputeNodes() {
		totalAfter += e.TestUsedGHz(u)
	}
	// Everything repaired moved its GHz to survivors; evicted queries gave
	// theirs back entirely.
	if totalAfter > totalBefore+1e-9 {
		t.Fatalf("total load grew across a crash: %v -> %v", totalBefore, totalAfter)
	}
	for _, n := range e.TestReleaseNodes() {
		if n == v {
			t.Fatalf("release still scheduled on crashed node %d", n)
		}
		if e.Liveness().IsDown(n) {
			t.Fatalf("release scheduled on a down node %d", n)
		}
	}
	// Capacity cap still respected everywhere.
	for _, u := range e.TestProblem().Cloud.ComputeNodes() {
		if e.TestUsedGHz(u) > e.TestProblem().Cloud.Capacity(u)+1e-9 {
			t.Fatalf("node %d over capacity after repair: %v > %v", u, e.TestUsedGHz(u), e.TestProblem().Cloud.Capacity(u))
		}
	}
}
