// Test-only windows into unexported engine state. The behavioral tests for
// this package live in the black-box online_test package — they assert with
// internal/invariant, whose failover audit imports online, so hosting them
// in-package would be an import cycle — and these shims are what they need
// beyond the public API.

package online

import (
	"testing"

	"edgerep/internal/cluster"
	"edgerep/internal/graph"
	"edgerep/internal/placement"
	"edgerep/internal/topology"
	"edgerep/internal/workload"
)

// NewTestProblem generates the canonical test instance: default topology and
// workload at the given seed, nq queries over 10 datasets, K=3.
func NewTestProblem(t testing.TB, seed int64, nq int) (*placement.Problem, *workload.Workload) {
	t.Helper()
	tc := topology.DefaultConfig()
	tc.Seed = seed
	top := topology.MustGenerate(tc)
	wc := workload.DefaultConfig()
	wc.Seed = seed
	wc.NumDatasets = 10
	wc.NumQueries = nq
	wc.MaxDatasetsPerQuery = 4
	w := workload.MustGenerate(wc, top)
	p, err := placement.NewProblem(cluster.New(top), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	return p, w
}

// TestProblem returns the problem the engine prices against.
func (e *Engine) TestProblem() *placement.Problem { return e.p }

// TestUsedGHz returns the engine's current allocation on v.
func (e *Engine) TestUsedGHz(v graph.NodeID) float64 { return e.usedGHz(v) }

// TestReleaseNodes returns the node of every scheduled capacity release.
func (e *Engine) TestReleaseNodes() []graph.NodeID {
	nodes := make([]graph.NodeID, len(e.releases))
	for i, r := range e.releases {
		nodes[i] = r.node
	}
	return nodes
}

// TestLoadState installs a canonical state dump, as recovery does.
func (e *Engine) TestLoadState(st *EngineState) { e.loadState(st) }
