package online

import (
	"math/rand"
	"reflect"
	"testing"

	"edgerep/internal/graph"
	"edgerep/internal/workload"
)

// TestFastPathEquivalence is the oracle check behind the byte-identity
// contract: the same seeded arrival stream, with crash/restore churn
// interleaved, offered to a fast-path engine and a NoFastPath engine must
// produce identical decisions, identical rejection classifications at the
// moment of each rejection, identical crash reports, and identical final
// state dumps. Any divergence here means the precomputed tables drifted from
// the pricing math they mirror.
func TestFastPathEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 7, 21, 42} {
		p, w := NewTestProblem(t, seed, 80)
		fast := NewEngine(p, len(w.Queries), Options{})
		slow := NewEngine(p, len(w.Queries), Options{NoFastPath: true})
		if fast.fast == nil {
			t.Fatal("default options did not build the fast path")
		}
		if slow.fast != nil {
			t.Fatal("NoFastPath engine still built tables")
		}
		rng := rand.New(rand.NewSource(seed))
		compute := p.Cloud.ComputeNodes()
		var down []graph.NodeID
		at := 0.0
		for i := range w.Queries {
			at += rng.ExpFloat64()
			hold := rng.ExpFloat64() * 50
			if i%9 == 4 {
				// Liveness churn: alternate crashing a random node with
				// restoring the oldest crashed one, mirrored on both engines.
				if len(down) > 0 && rng.Intn(2) == 0 {
					v := down[0]
					down = down[1:]
					if err := fast.Restore(v); err != nil {
						t.Fatal(err)
					}
					if err := slow.Restore(v); err != nil {
						t.Fatal(err)
					}
				} else {
					v := compute[rng.Intn(len(compute))]
					wasDown := fast.Liveness().IsDown(v)
					repF, errF := fast.Crash(at, v)
					repS, errS := slow.Crash(at, v)
					if errF != nil || errS != nil {
						t.Fatalf("seed %d crash(%d): fast err %v, slow err %v", seed, v, errF, errS)
					}
					if !reflect.DeepEqual(repF, repS) {
						t.Fatalf("seed %d crash(%d) reports diverge:\nfast %+v\nslow %+v", seed, v, repF, repS)
					}
					if !wasDown {
						down = append(down, v)
					}
				}
			}
			q := workload.QueryID(i)
			arr := Arrival{Query: q, AtSec: at, HoldSec: hold}
			decF, errF := fast.Offer(arr)
			decS, errS := slow.Offer(arr)
			if errF != nil || errS != nil {
				t.Fatalf("seed %d offer %d: fast err %v, slow err %v", seed, i, errF, errS)
			}
			if !reflect.DeepEqual(decF, decS) {
				t.Fatalf("seed %d offer %d decisions diverge:\nfast %+v\nslow %+v", seed, i, decF, decS)
			}
			if !decF.Admitted {
				rF, dsF, nF := fast.ClassifyRejection(q)
				rS, dsS, nS := slow.ClassifyRejection(q)
				if rF != rS || dsF != dsS || nF != nS {
					t.Fatalf("seed %d offer %d classifications diverge: fast (%v, %d, %d) slow (%v, %d, %d)",
						seed, i, rF, dsF, nF, rS, dsS, nS)
				}
			}
		}
		if !reflect.DeepEqual(fast.Result(), slow.Result()) {
			t.Fatalf("seed %d results diverge:\nfast %+v\nslow %+v", seed, fast.Result(), slow.Result())
		}
		if !reflect.DeepEqual(fast.StateDump(), slow.StateDump()) {
			t.Fatalf("seed %d state dumps diverge", seed)
		}
	}
}

// TestFastPathZeroAlloc pins the fast path's allocation contract: pricing a
// rejected offer and classifying the rejection allocate nothing, and an
// admitted offer allocates exactly the assignment slice the decision keeps.
// ci.sh runs this as a hard gate — a regression here is the GC pressure the
// precomputed tables exist to eliminate.
func TestFastPathZeroAlloc(t *testing.T) {
	p, w := NewTestProblem(t, 5, 120)
	e := NewEngine(p, len(w.Queries), Options{})

	// Admitted path, measured before any state accumulates: planFast does
	// not commit, so repeated calls are idempotent.
	var admitQ workload.QueryID = -1
	for i := range w.Queries {
		if ok, as := e.planFast(workload.QueryID(i)); ok && len(as) > 0 {
			admitQ = workload.QueryID(i)
			break
		}
	}
	if admitQ == -1 {
		t.Fatal("no admittable query on a fresh engine; scenario too weak")
	}
	if allocs := testing.AllocsPerRun(200, func() {
		e.planFast(admitQ)
	}); allocs != 1 {
		t.Errorf("admitted planFast allocates %.1f objects/op, want exactly 1 (the returned assignments)", allocs)
	}

	// Saturate with hold-forever offers until rejections exist.
	var rejQ workload.QueryID = -1
	for i := range w.Queries {
		dec, err := e.Offer(Arrival{Query: workload.QueryID(i), AtSec: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Admitted {
			rejQ = workload.QueryID(i)
		}
	}
	if rejQ == -1 {
		t.Fatal("hold-forever stream saturated nothing; scenario too weak")
	}
	if ok, _ := e.planFast(rejQ); ok {
		t.Fatalf("query %d re-plans as admittable on the saturated engine", rejQ)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		e.planFast(rejQ)
		e.classifyFast(rejQ)
	}); allocs != 0 {
		t.Errorf("rejection fast path allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkFastPathPlan prices one saturated-engine offer per op, table scan
// against the full per-offer search it replaced. The fast side is the
// ci.sh-gated zero-alloc path; the slow side is the oracle the equivalence
// tests compare against.
func BenchmarkFastPathPlan(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noFast bool
	}{{"fast", false}, {"slow", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p, w := NewTestProblem(b, 5, 120)
			e := NewEngine(p, len(w.Queries), Options{NoFastPath: mode.noFast})
			var rejQ workload.QueryID = -1
			for i := range w.Queries {
				dec, err := e.Offer(Arrival{Query: workload.QueryID(i), AtSec: float64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if !dec.Admitted {
					rejQ = workload.QueryID(i)
				}
			}
			if rejQ == -1 {
				b.Fatal("hold-forever stream saturated nothing")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode.noFast {
					e.planSlow(rejQ)
				} else {
					e.planFast(rejQ)
				}
			}
		})
	}
}

// TestFastPathStats covers the /state payload source: a fast engine reports
// its table sizes and moving counters, a NoFastPath engine reports disabled
// with the capacity shards still present.
func TestFastPathStats(t *testing.T) {
	p, w := NewTestProblem(t, 6, 30)
	e := NewEngine(p, len(w.Queries), Options{})
	st := e.FastPathStats()
	if !st.Enabled || st.Tables == 0 || st.Candidates == 0 {
		t.Fatalf("fast engine stats %+v, want enabled with non-empty tables", st)
	}
	if len(st.Shards) == 0 {
		t.Fatal("no capacity shards reported")
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Offer(Arrival{Query: workload.QueryID(i), AtSec: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.FastPathStats().Offers; got != 5 {
		t.Fatalf("fast path priced %d offers, want 5", got)
	}
	if _, err := e.Crash(100, p.Cloud.ComputeNodes()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Offer(Arrival{Query: 5, AtSec: 101}); err != nil {
		t.Fatal(err)
	}
	st = e.FastPathStats()
	if st.LiveGen == 0 || st.Refreshes == 0 {
		t.Fatalf("crash did not move the fence: %+v", st)
	}

	off := NewEngine(p, len(w.Queries), Options{NoFastPath: true})
	st = off.FastPathStats()
	if st.Enabled || st.Tables != 0 {
		t.Fatalf("NoFastPath stats %+v, want disabled", st)
	}
	if len(st.Shards) == 0 {
		t.Fatal("NoFastPath engine lost its capacity shards")
	}
}
