// Sharded capacity ledger: the online engine's instantaneous per-node
// allocation, stored as dense atomic float bits instead of the original
// map[NodeID]float64. Nodes are grouped into one shard per topology role
// (data center, cloudlet), which keeps each tier's counters contiguous and
// gives /state a lock-free per-tier utilization rollup without touching the
// epoch lock.
//
// Concurrency contract: the epoch loop is the single writer (every mutation
// happens under the serving layer's epoch lock); readers — the /state
// handler's shard rollup and any observer of FastPathStats — load the atomic
// bits without a lock. A reader can observe a mid-offer intermediate sum,
// never a torn float.
package online

import (
	"math"
	"sync/atomic"

	"edgerep/internal/graph"
	"edgerep/internal/topology"
)

// capShard is the counter block for one node role.
type capShard struct {
	kind   topology.NodeKind
	nodes  []graph.NodeID
	used   []atomic.Uint64 // float64 bits of instantaneous allocation
	capGHz float64         // summed capacity of the shard's nodes
}

// capLedger maps every node to its shard slot. Non-compute nodes have no
// slot: writes to them are dropped and reads return zero, matching the old
// map's behaviour (the only such write is Crash zeroing an arbitrary node's
// allocation, which for a switch was already a no-op in effect).
type capLedger struct {
	shardOf []int16 // by NodeID; -1 = non-compute
	idxIn   []int32 // by NodeID; slot within the shard
	shards  []capShard
}

// newCapLedger builds the ledger over a topology's compute nodes, one shard
// per node kind in first-appearance order (compute nodes ascend, so the
// shard order is deterministic).
func newCapLedger(t *topology.Topology) *capLedger {
	n := t.Graph.NumNodes()
	l := &capLedger{
		shardOf: make([]int16, n),
		idxIn:   make([]int32, n),
	}
	for i := range l.shardOf {
		l.shardOf[i] = -1
	}
	byKind := make(map[topology.NodeKind]int)
	for _, v := range t.ComputeNodes {
		node := t.Node(v)
		si, ok := byKind[node.Kind]
		if !ok {
			si = len(l.shards)
			byKind[node.Kind] = si
			l.shards = append(l.shards, capShard{kind: node.Kind})
		}
		sh := &l.shards[si]
		l.shardOf[v] = int16(si)
		l.idxIn[v] = int32(len(sh.nodes))
		sh.nodes = append(sh.nodes, v)
		sh.capGHz += node.CapacityGHz
	}
	for si := range l.shards {
		l.shards[si].used = make([]atomic.Uint64, len(l.shards[si].nodes))
	}
	return l
}

// get returns node v's instantaneous allocation (zero for non-compute).
func (l *capLedger) get(v graph.NodeID) float64 {
	si := l.shardOf[v]
	if si < 0 {
		return 0
	}
	return math.Float64frombits(l.shards[si].used[l.idxIn[v]].Load())
}

// set stores node v's allocation (dropped for non-compute).
func (l *capLedger) set(v graph.NodeID, ghz float64) {
	si := l.shardOf[v]
	if si < 0 {
		return
	}
	l.shards[si].used[l.idxIn[v]].Store(math.Float64bits(ghz))
}

// reset zeroes every counter (snapshot load).
func (l *capLedger) reset() {
	for si := range l.shards {
		sh := &l.shards[si]
		for i := range sh.used {
			sh.used[i].Store(0)
		}
	}
}

// ShardUse is one role tier's lock-free utilization rollup.
type ShardUse struct {
	Kind    string  `json:"kind"`
	Nodes   int     `json:"nodes"`
	UsedGHz float64 `json:"used_ghz"`
	CapGHz  float64 `json:"cap_ghz"`
}

// shardUse sums each shard with atomic loads only.
func (l *capLedger) shardUse() []ShardUse {
	out := make([]ShardUse, len(l.shards))
	for si := range l.shards {
		sh := &l.shards[si]
		sum := 0.0
		for i := range sh.used {
			sum += math.Float64frombits(sh.used[i].Load())
		}
		out[si] = ShardUse{Kind: sh.kind.String(), Nodes: len(sh.nodes), UsedGHz: sum, CapGHz: sh.capGHz}
	}
	return out
}
