// The admission fast path: per-(query, demand) feasibility tables
// precomputed at engine construction so Offer prices an arrival with array
// scans — no Dijkstra, no map allocation, no per-candidate delay model
// evaluation. The tables exist because everything the pricing loop consults
// except load and liveness is static for the life of the engine: the
// topology is immutable, EvalDelay is a pure function of (query, dataset,
// node), the deadline and the replica-open price seeds are fixed per demand,
// and the preferred-site set is frozen after prePlace.
//
// What stays dynamic is mirrored, not recomputed:
//
//   - instantaneous load lives in the sharded atomic ledger (capshard.go)
//     and is read per candidate;
//   - node liveness is mirrored into a dense []bool, fenced by
//     cluster.Liveness.Gen(): every Offer/classification compares the
//     tracked generation before consulting the mirror and refreshes it when
//     a crash, restore, or external liveness edit moved it. The fence is
//     what makes "a decision never admits through a stale table" a checked
//     property (TestFastPathStaleTableFuzz) rather than a hope;
//   - θ(v) is cached per node and invalidated by the engine's centralized
//     used-mutation helpers, so repeated candidates of one offer pay one
//     math.Pow each at most.
//
// Byte-identity contract: with the fast path on or off, every decision, its
// journal record, and its trace event are byte-identical. The pricing
// expressions below therefore reproduce pickNode's float arithmetic with the
// same associativity (precomputed factors are the exact subexpressions the
// slow path evaluates, never algebraic rearrangements), and ties resolve to
// the lowest node ID exactly as the slow path's ascending scan does.
package online

import (
	"math"
	"sort"
	"sync/atomic"

	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/placement"
	"edgerep/internal/workload"
)

var (
	statFastBuilds    = instrument.NewCounter("online.fastpath_table_builds")
	statFastOffers    = instrument.NewCounter("online.fastpath_offers")
	statFastRefreshes = instrument.NewCounter("online.fastpath_refreshes")
)

// fpCand is one pricing candidate: a node whose evaluation delay meets the
// demand's deadline under the strict admission predicate (delay ≤ deadline,
// no epsilon — exactly pickNode's gate).
type fpCand struct {
	node  graph.NodeID
	delay float64
	// delayCost is the precomputed deadline-slack price term
	// w·size·(delay/deadline), evaluated with the slow path's exact
	// expression shape.
	delayCost float64
	// preferred marks forecast-derived proactive sites (zero µ price).
	preferred bool
}

// fpClassCand is one classification candidate: a node passing the
// ε-tolerant MeetsDeadline predicate (classification and admission use
// different feasibility predicates; the tables keep both sets).
type fpClassCand struct {
	node  graph.NodeID
	delay float64
}

// fpDemand is the precomputed table for one (query, demand) pair.
type fpDemand struct {
	dataset workload.DatasetID
	// need is ComputeNeed(q, dataset); size25 seeds the replica-open price
	// (0.25·size, the exact subexpression pickNode evaluates first).
	need   float64
	size25 float64
	// cands is the admission candidate set, sorted by ascending delay
	// (ties by node ID) — the delay-sorted table the scan walks.
	cands []fpCand
	// class is the classification candidate set in ascending node order
	// (ClassifyRejection scans nodes ascending; order is part of its
	// determinism contract).
	class []fpClassCand
	// bestFinite names the finite-delay node closest to the deadline, the
	// locus a deadline rejection reports; -1 when every delay is infinite.
	bestFinite      graph.NodeID
	bestFiniteDelay float64
}

// fpScratch is the per-offer planning state, reused across offers so the
// fast path allocates nothing (TestFastPathZeroAlloc asserts this). The
// slices replace the slow path's tentative/tentOpen maps; bundles are small
// (a handful of demands), so linear scans beat hashing.
type fpScratch struct {
	tentNode []graph.NodeID
	tentAmt  []float64
	openDs   []workload.DatasetID
	openNode []graph.NodeID
	assign   []placement.Assignment
}

func (s *fpScratch) reset() {
	s.tentNode = s.tentNode[:0]
	s.tentAmt = s.tentAmt[:0]
	s.openDs = s.openDs[:0]
	s.openNode = s.openNode[:0]
	s.assign = s.assign[:0]
}

// tentFor returns the capacity already tentatively claimed on v by earlier
// demands of the offer being planned (zero when none, like a map miss).
func (s *fpScratch) tentFor(v graph.NodeID) float64 {
	for i, n := range s.tentNode {
		if n == v {
			return s.tentAmt[i]
		}
	}
	return 0
}

func (s *fpScratch) addTent(v graph.NodeID, need float64) {
	for i, n := range s.tentNode {
		if n == v {
			s.tentAmt[i] += need
			return
		}
	}
	s.tentNode = append(s.tentNode, v)
	s.tentAmt = append(s.tentAmt, need)
}

// openCountFor counts distinct replica opens planned for ds so far.
func (s *fpScratch) openCountFor(ds workload.DatasetID) int {
	c := 0
	for _, d := range s.openDs {
		if d == ds {
			c++
		}
	}
	return c
}

func (s *fpScratch) openHas(ds workload.DatasetID, v graph.NodeID) bool {
	for i, d := range s.openDs {
		if d == ds && s.openNode[i] == v {
			return true
		}
	}
	return false
}

// fastPath holds the engine's precomputed tables plus the fenced dynamic
// mirrors. The epoch loop is the single writer; the stats fields observers
// read lock-free are atomics.
type fastPath struct {
	perQuery [][]fpDemand

	// capEps[v] = Capacity(v)·maxU + 1e-9, the admission headroom bound;
	// capMaxU[v] = Capacity(v)·maxU, the classification Avail minuend.
	// Both are the exact subexpressions the slow path computes inline.
	capEps  []float64
	capMaxU []float64

	// down mirrors the liveness tracker's crashed set densely; liveGen is
	// the generation the mirror was built at (the epoch fence), liveDirty
	// forces a rebuild regardless of generation (a tracker was swapped or
	// state was bulk-loaded).
	down      []bool
	liveGen   atomic.Uint64
	liveDirty bool

	scr fpScratch

	tables     int
	candidates int
	offers     atomic.Uint64
	refreshes  atomic.Uint64
}

// FastPathStats is the fast path's observability rollup, served lock-free
// on /state (table sizes are immutable, counters are atomics, and the shard
// sums read the capacity ledger's atomic bits).
type FastPathStats struct {
	Enabled    bool       `json:"enabled"`
	Tables     int        `json:"tables"`
	Candidates int        `json:"candidates"`
	LiveGen    uint64     `json:"live_gen"`
	Refreshes  uint64     `json:"refreshes"`
	Offers     uint64     `json:"offers"`
	Shards     []ShardUse `json:"shards,omitempty"`
}

// FastPathStats reports the fast path's table and fence counters (Enabled
// false with zeroed table fields when the engine runs the slow path). Safe
// to call concurrently with the epoch loop.
func (e *Engine) FastPathStats() FastPathStats {
	st := FastPathStats{Shards: e.used.shardUse()}
	if e.fast == nil {
		return st
	}
	st.Enabled = true
	st.Tables = e.fast.tables
	st.Candidates = e.fast.candidates
	st.LiveGen = e.fast.liveGen.Load()
	st.Refreshes = e.fast.refreshes.Load()
	st.Offers = e.fast.offers.Load()
	return st
}

// newFastPath materializes the tables. Candidate enumeration is seeded from
// the home node's transfer-distance ranking (graph.RankTargets through the
// topology's shared DistanceCache, one Dijkstra per distinct home), then
// refined to total-evaluation-delay order, which the per-offer scan walks.
func newFastPath(e *Engine) *fastPath {
	t := e.p.Cloud.Topology()
	n := t.Graph.NumNodes()
	f := &fastPath{
		perQuery: make([][]fpDemand, len(e.p.Queries)),
		capEps:   make([]float64, n),
		capMaxU:  make([]float64, n),
		down:     make([]bool, n),
	}
	maxU := e.opt.maxUtil()
	w := e.opt.delayWeight()
	compute := e.p.Cloud.ComputeNodes()
	for _, v := range compute {
		capGHz := e.p.Cloud.Capacity(v)
		f.capMaxU[v] = capGHz * maxU
		f.capEps[v] = capGHz*maxU + 1e-9
	}
	cache := t.DistanceCache()
	maxDemands := 0
	for qi := range e.p.Queries {
		q := &e.p.Queries[qi]
		qid := workload.QueryID(qi)
		if len(q.Demands) > maxDemands {
			maxDemands = len(q.Demands)
		}
		ranked := cache.RankTargets(q.Home, compute)
		demands := make([]fpDemand, len(q.Demands))
		for di, dm := range q.Demands {
			d := fpDemand{
				dataset:         dm.Dataset,
				need:            e.p.ComputeNeed(qid, dm.Dataset),
				size25:          0.25 * e.p.Datasets[dm.Dataset].SizeGB,
				bestFinite:      -1,
				bestFiniteDelay: math.Inf(1),
			}
			size := e.p.Datasets[dm.Dataset].SizeGB
			deadline := q.DeadlineSec
			for _, rt := range ranked {
				v := rt.Node
				delay, ok := e.p.EvalDelay(qid, dm.Dataset, v)
				if !ok || delay > deadline {
					continue
				}
				d.cands = append(d.cands, fpCand{
					node:      v,
					delay:     delay,
					delayCost: w * size * (delay / deadline),
					preferred: e.preferredSites != nil && e.preferredSites[dm.Dataset][v],
				})
			}
			sort.Slice(d.cands, func(i, j int) bool {
				if d.cands[i].delay != d.cands[j].delay {
					return d.cands[i].delay < d.cands[j].delay
				}
				return d.cands[i].node < d.cands[j].node
			})
			for _, v := range compute {
				delay, ok := e.p.EvalDelay(qid, dm.Dataset, v)
				if !ok {
					continue
				}
				if !math.IsInf(delay, 1) && delay < d.bestFiniteDelay {
					d.bestFinite, d.bestFiniteDelay = v, delay
				}
				if e.p.MeetsDeadline(qid, dm.Dataset, v) {
					d.class = append(d.class, fpClassCand{node: v, delay: delay})
				}
			}
			demands[di] = d
			f.tables++
			f.candidates += len(d.cands)
		}
		f.perQuery[qi] = demands
	}
	f.scr = fpScratch{
		tentNode: make([]graph.NodeID, 0, maxDemands),
		tentAmt:  make([]float64, 0, maxDemands),
		openDs:   make([]workload.DatasetID, 0, maxDemands),
		openNode: make([]graph.NodeID, 0, maxDemands),
		assign:   make([]placement.Assignment, 0, maxDemands),
	}
	statFastBuilds.Inc()
	return f
}

// refresh is the epoch fence: a no-op while the liveness generation the
// mirror was built at still matches (one atomic load and one comparison),
// a full dense rebuild when a crash, restore, external liveness edit, or
// bulk state load moved it. Called at the top of every fast planning and
// classification pass, so no decision reads the mirror across a stale
// generation.
func (f *fastPath) refresh(e *Engine) {
	if e.live == nil {
		return
	}
	g := e.live.Gen()
	if !f.liveDirty && g == f.liveGen.Load() {
		return
	}
	for i := range f.down {
		f.down[i] = false
	}
	for _, v := range e.live.DownNodes() {
		f.down[v] = true
	}
	f.liveGen.Store(g)
	f.liveDirty = false
	f.refreshes.Add(1)
	statFastRefreshes.Inc()
}

// invalidate forces the next refresh to rebuild the mirror even on a
// matching generation — AttachLiveness can swap in a different tracker that
// happens to share a generation number, and loadState bulk-replays downs.
func (f *fastPath) invalidate() { f.liveDirty = true }

// planFast plans one arrival against the precomputed tables; it is the fast
// twin of Offer's slow planning loop and returns bit-identical decisions.
// Rejection planning allocates nothing; an admission allocates only the
// returned assignment slice the decision keeps.
func (e *Engine) planFast(qid workload.QueryID) (bool, []placement.Assignment) {
	f := e.fast
	f.refresh(e)
	f.offers.Add(1)
	statFastOffers.Inc()
	s := &f.scr
	s.reset()
	demands := f.perQuery[qid]
	for di := range demands {
		d := &demands[di]
		v, ok := e.pickFast(d, s)
		if !ok {
			return false, nil
		}
		s.addTent(v, d.need)
		if !e.sol.HasReplica(d.dataset, v) && !s.openHas(d.dataset, v) {
			s.openDs = append(s.openDs, d.dataset)
			s.openNode = append(s.openNode, v)
		}
		s.assign = append(s.assign, placement.Assignment{Query: qid, Dataset: d.dataset, Node: v})
	}
	if len(s.assign) == 0 {
		return true, nil
	}
	as := make([]placement.Assignment, len(s.assign))
	copy(as, s.assign)
	return true, as
}

// pickFast is pickNode over the demand's precomputed candidate table. Every
// float expression mirrors the slow path's associativity exactly, and the
// explicit lowest-node tie-break reproduces the ascending scan's strict-<
// argmin, so the two paths select identical nodes at identical costs.
func (e *Engine) pickFast(d *fpDemand, s *fpScratch) (graph.NodeID, bool) {
	f := e.fast
	openCount := e.sol.ReplicaCount(d.dataset) + s.openCountFor(d.dataset)
	kBound := e.p.MaxReplicas
	var best graph.NodeID = -1
	bestCost := math.Inf(1)
	for i := range d.cands {
		c := &d.cands[i]
		v := c.node
		if f.down[v] {
			continue
		}
		if e.usedGHz(v)+s.tentFor(v)+d.need > f.capEps[v] {
			continue
		}
		rep := 0.0
		if !e.sol.HasReplica(d.dataset, v) && !s.openHas(d.dataset, v) {
			if openCount >= kBound {
				continue
			}
			if !c.preferred {
				rep = d.size25 * float64(openCount+1) / float64(kBound)
			}
		}
		cost := d.need*e.theta(v) + c.delayCost + rep
		if cost < bestCost || (cost == bestCost && v < best) {
			best, bestCost = v, cost
		}
	}
	return best, best != -1
}

// classifyFast is ClassifyRejection over the precomputed classification
// tables: same reason, same locus, same tie-breaks as the generic scan in
// internal/placement, with the static portions (the ε-tolerant feasible
// set in ascending node order, the closest finite-delay node) read from the
// table and only load and liveness consulted live.
func (e *Engine) classifyFast(q workload.QueryID) (instrument.Reason, workload.DatasetID, graph.NodeID) {
	f := e.fast
	f.refresh(e)
	kRepl := e.p.MaxReplicas
	for di := range f.perQuery[q] {
		d := &f.perQuery[q][di]
		crashNode := graph.NodeID(-1)
		capNode := graph.NodeID(-1)
		capBest := math.Inf(-1)
		kNode := graph.NodeID(-1)
		kBestDelay := math.Inf(1)
		feasible, servable, capacityOK := false, false, false
		for i := range d.class {
			cc := &d.class[i]
			v := cc.node
			if f.down[v] {
				if crashNode == -1 {
					crashNode = v
				}
				continue
			}
			feasible = true
			avail := f.capMaxU[v] - e.usedGHz(v)
			if avail > capBest {
				capNode, capBest = v, avail
			}
			if d.need > avail+1e-9 {
				continue
			}
			capacityOK = true
			if cc.delay < kBestDelay {
				kNode, kBestDelay = v, cc.delay
			}
			if e.sol.HasReplica(d.dataset, v) || e.sol.ReplicaCount(d.dataset) < kRepl {
				servable = true
				break
			}
		}
		switch {
		case servable:
			continue
		case !feasible && crashNode != -1:
			return instrument.ReasonNodeCrashed, d.dataset, crashNode
		case !feasible && d.bestFinite == -1:
			return instrument.ReasonDisconnected, d.dataset, -1
		case !feasible:
			return instrument.ReasonDeadline, d.dataset, d.bestFinite
		case !capacityOK:
			return instrument.ReasonCapacity, d.dataset, capNode
		default:
			return instrument.ReasonKBound, d.dataset, kNode
		}
	}
	return instrument.ReasonBundleInfeasible, -1, -1
}
