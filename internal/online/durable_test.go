package online_test

import (
	"errors"
	"strings"
	"testing"

	"edgerep/internal/graph"
	"edgerep/internal/invariant"
	"edgerep/internal/journal"
	"edgerep/internal/online"
	"edgerep/internal/workload"
)

// script is a deterministic mixed input sequence: offers at 10s spacing with
// finite holds, a crash of the busiest node partway, a restore, then more
// offers. It drives eng and returns the crash victim.
func script(t *testing.T, eng *online.Engine, nq int, crashAfter int) graph.NodeID {
	t.Helper()
	victim := graph.NodeID(-1)
	at := 0.0
	for i := 0; i < nq; i++ {
		if i == crashAfter {
			victim = busiestNode(eng)
			if victim == -1 {
				t.Fatal("no assignments before crash point")
			}
			if _, err := eng.Crash(at, victim); err != nil {
				t.Fatal(err)
			}
			at += 5
			if err := eng.Restore(victim); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: at, HoldSec: 120}); err != nil {
			t.Fatal(err)
		}
		at += 10
	}
	return victim
}

// runJournaled drives the script against a journaled engine and an
// unjournaled reference over the same problem, returning both plus the
// journal directory. snapEvery 0 means WAL-only.
func runJournaled(t *testing.T, seed int64, nq, crashAfter, snapEvery int) (dir string, journaled, reference *online.Engine) {
	t.Helper()
	dir = t.TempDir()
	j, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	p, w := online.NewTestProblem(t, seed, nq)
	journaled = online.NewEngine(p, len(w.Queries), online.Options{Journal: j, SnapshotEvery: snapEvery})
	v1 := script(t, journaled, nq, crashAfter)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	p2, _ := online.NewTestProblem(t, seed, nq)
	reference = online.NewEngine(p2, len(w.Queries), online.Options{})
	v2 := script(t, reference, nq, crashAfter)
	if v1 != v2 {
		t.Fatalf("nondeterministic script: victims %d vs %d", v1, v2)
	}
	return dir, journaled, reference
}

func recoverFrom(t *testing.T, dir string, seed int64, nq int) *online.Engine {
	t.Helper()
	st, err := journal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, w := online.NewTestProblem(t, seed, nq)
	e, err := online.Recover(p, len(w.Queries), online.Options{}, st)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRecoverCleanShutdownFieldIdentical(t *testing.T) {
	dir, journaled, reference := runJournaled(t, 7, 40, 20, 0)
	recovered := recoverFrom(t, dir, 7, 40)
	if err := invariant.CheckRecovered(recovered.StateDump(), reference.StateDump()); err != nil {
		t.Fatal(err)
	}
	if err := invariant.CheckRecovered(recovered.StateDump(), journaled.StateDump()); err != nil {
		t.Fatalf("recovered vs the journaled original: %v", err)
	}
}

func TestRecoverWithSnapshots(t *testing.T) {
	// Snapshot cadence must not change the recovered state, only shorten
	// replay.
	for _, every := range []int{1, 5, 17} {
		dir, _, reference := runJournaled(t, 9, 35, 18, every)
		recovered := recoverFrom(t, dir, 9, 35)
		if err := invariant.CheckRecovered(recovered.StateDump(), reference.StateDump()); err != nil {
			t.Fatalf("SnapshotEvery=%d: %v", every, err)
		}
		st, err := journal.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Snapshot == nil {
			t.Fatalf("SnapshotEvery=%d produced no snapshot", every)
		}
	}
}

func TestRecoverTornTailIsPrefixRun(t *testing.T) {
	// Tear the tail mid-record, as proc-crash does: recovery must equal a
	// reference run over the surviving prefix of inputs.
	const nq, crashAfter = 30, 12
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	p, w := online.NewTestProblem(t, 5, nq)
	e := online.NewEngine(p, len(w.Queries), online.Options{Journal: j, SnapshotEvery: 6})
	script(t, e, nq, crashAfter)
	if err := j.TearTail([]byte(`{"kind":"offer","at":9e9,"query":0,"node":-1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := journal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Torn {
		t.Fatal("torn tail not detected")
	}
	survivors := len(st.Records)
	p2, _ := online.NewTestProblem(t, 5, nq)
	recovered, err := online.Recover(p2, len(w.Queries), online.Options{}, st)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same script truncated to the surviving record count.
	p3, _ := online.NewTestProblem(t, 5, nq)
	reference := online.NewEngine(p3, len(w.Queries), online.Options{})
	applied := 0
	at := 0.0
	for i := 0; i < nq && applied < survivors; i++ {
		if i == crashAfter {
			v := busiestNode(reference)
			if _, err := reference.Crash(at, v); err != nil {
				t.Fatal(err)
			}
			applied++
			at += 5
			if applied < survivors {
				if err := reference.Restore(v); err != nil {
					t.Fatal(err)
				}
				applied++
			}
			if applied >= survivors {
				break
			}
		}
		if _, err := reference.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: at, HoldSec: 120}); err != nil {
			t.Fatal(err)
		}
		applied++
		at += 10
	}
	if err := invariant.CheckRecovered(recovered.StateDump(), reference.StateDump()); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverResumesJournaling(t *testing.T) {
	// A recovered engine with the journal re-attached continues the log, and
	// a second recovery sees the combined history.
	const nq = 20
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	p, w := online.NewTestProblem(t, 3, nq)
	e := online.NewEngine(p, len(w.Queries), online.Options{Journal: j})
	for i := 0; i < nq/2; i++ {
		if _, err := e.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i) * 10, HoldSec: 120}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := journal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := journal.Open(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if j2.LSN() != int64(nq/2) {
		t.Fatalf("reopened journal at LSN %d, want %d", j2.LSN(), nq/2)
	}
	p2, _ := online.NewTestProblem(t, 3, nq)
	e2, err := online.Recover(p2, len(w.Queries), online.Options{Journal: j2}, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := nq / 2; i < nq; i++ {
		if _, err := e2.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i) * 10, HoldSec: 120}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := journal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Records) != nq {
		t.Fatalf("combined journal has %d records, want %d", len(st2.Records), nq)
	}
	p3, _ := online.NewTestProblem(t, 3, nq)
	final, err := online.Recover(p3, len(w.Queries), online.Options{}, st2)
	if err != nil {
		t.Fatal(err)
	}
	p4, _ := online.NewTestProblem(t, 3, nq)
	reference := online.NewEngine(p4, len(w.Queries), online.Options{})
	for i := 0; i < nq; i++ {
		if _, err := reference.Offer(online.Arrival{Query: workload.QueryID(i), AtSec: float64(i) * 10, HoldSec: 120}); err != nil {
			t.Fatal(err)
		}
	}
	if err := invariant.CheckRecovered(final.StateDump(), reference.StateDump()); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverDivergenceDetected(t *testing.T) {
	dir, _, _ := runJournaled(t, 13, 25, 10, 0)
	st, err := journal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying against a DIFFERENT problem (other seed) must not silently
	// fabricate state: either an input is outright inapplicable or an
	// outcome mismatches — both surface as errors, the latter typed.
	p, w := online.NewTestProblem(t, 14, 25)
	if _, err := online.Recover(p, len(w.Queries), online.Options{}, st); err == nil {
		t.Fatal("recovery against a different problem succeeded")
	}

	// Tampering with a recorded outcome is caught as online.ErrDivergent: flip the
	// first admit outcome to a reject.
	st2, err := journal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	const admit, reject = `"event":"admit"`, `"event":"reject"`
	tampered := false
	for i, rec := range st2.Records {
		if s := string(rec); strings.Contains(s, admit) {
			st2.Records[i] = []byte(strings.Replace(s, admit, reject, 1))
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no admit record found to tamper with")
	}
	p2, w2 := online.NewTestProblem(t, 13, 25)
	if _, err := online.Recover(p2, len(w2.Queries), online.Options{}, st2); !errors.Is(err, online.ErrDivergent) {
		t.Fatalf("tampered journal: err=%v, want online.ErrDivergent", err)
	}
}

func TestStateDumpRoundTrip(t *testing.T) {
	// loadState(StateDump()) is the identity on the canonical state — the
	// property snapshots rely on, including +Inf hold-forever releases.
	e, w := runAll(t, 21, 30, 0) // HoldSec 0 → Forever releases
	v := busiestNode(e)
	if _, err := e.Crash(1e6, v); err != nil {
		t.Fatal(err)
	}
	dump := e.StateDump()
	p2, _ := online.NewTestProblem(t, 21, 30)
	e2 := online.NewEngine(p2, len(w.Queries), online.Options{})
	e2.TestLoadState(dump)
	if err := invariant.CheckRecovered(e2.StateDump(), e.StateDump()); err != nil {
		t.Fatal(err)
	}
}
