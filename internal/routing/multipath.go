package routing

import (
	"fmt"
	"sort"

	"edgerep/internal/placement"
	"edgerep/internal/topology"
)

// MeasureFootprintMultipath routes intermediate-result transfers with
// bottleneck-aware path selection: for every transfer, up to k near-shortest
// candidate paths (Yen's algorithm, internal/graph) whose delay stays within
// stretch × the shortest-path delay are considered, and the candidate that
// minimizes the resulting maximum link load is chosen. Transfers are
// processed in decreasing volume so the heaviest flows pick first. This is
// the knob an operator turns when one WMAN link saturates: a little delay
// stretch buys a flatter load profile. Delay-stretch bounding keeps every
// transfer within stretch of the placement model's delay assumption, so
// admitted queries stay approximately on deadline.
func MeasureFootprintMultipath(p *placement.Problem, sol *placement.Solution, top *topology.Topology, k int, stretch float64) (*Footprint, error) {
	if k < 1 {
		return nil, fmt.Errorf("routing: k = %d, need ≥ 1", k)
	}
	if stretch < 1 {
		return nil, fmt.Errorf("routing: stretch %v < 1", stretch)
	}
	fp := &Footprint{Loads: make(LoadMap)}

	type pair struct{ src, dst int }
	cache := make(map[pair][]Path)
	pathsFor := func(src, dst int) ([]Path, error) {
		key := pair{src, dst}
		if ps, ok := cache[key]; ok {
			return ps, nil
		}
		wps, err := top.Graph.KShortestPaths(top.Nodes[src].ID, top.Nodes[dst].ID, k)
		if err != nil {
			return nil, err
		}
		if len(wps) == 0 {
			return nil, fmt.Errorf("routing: no path %d→%d", src, dst)
		}
		limit := wps[0].Weight * stretch
		var out []Path
		for _, wp := range wps {
			if wp.Weight <= limit+1e-12 {
				out = append(out, Path{Nodes: wp.Nodes, DelayPerGB: wp.Weight})
			}
		}
		cache[key] = out
		return out, nil
	}

	// Collect transfers, heaviest first, with deterministic tie-breaks.
	type transfer struct {
		src, dst int
		vol      float64
		q        int
		ds       int
	}
	var transfers []transfer
	for _, a := range sol.Assignments {
		d, ok := p.Demand(a.Query, a.Dataset)
		if !ok {
			return nil, fmt.Errorf("routing: assignment for non-demanded dataset %d of query %d", a.Dataset, a.Query)
		}
		home := p.Queries[a.Query].Home
		if a.Node == home {
			continue
		}
		transfers = append(transfers, transfer{
			src: int(a.Node), dst: int(home),
			vol: p.Datasets[a.Dataset].SizeGB * d.Selectivity,
			q:   int(a.Query), ds: int(a.Dataset),
		})
	}
	sort.Slice(transfers, func(i, j int) bool {
		if transfers[i].vol != transfers[j].vol {
			return transfers[i].vol > transfers[j].vol
		}
		if transfers[i].q != transfers[j].q {
			return transfers[i].q < transfers[j].q
		}
		return transfers[i].ds < transfers[j].ds
	})

	for _, tr := range transfers {
		paths, err := pathsFor(tr.src, tr.dst)
		if err != nil {
			return nil, err
		}
		// Pick the candidate minimizing the resulting max load across its
		// own links; ties favour the shorter (earlier) path.
		bestIdx := 0
		bestPeak := -1.0
		for i, path := range paths {
			peak := 0.0
			for j := 1; j < len(path.Nodes); j++ {
				l := canonical(path.Nodes[j-1], path.Nodes[j])
				if load := fp.Loads[l] + tr.vol; load > peak {
					peak = load
				}
			}
			if bestPeak < 0 || peak < bestPeak-1e-12 {
				bestIdx, bestPeak = i, peak
			}
		}
		chosen := paths[bestIdx]
		fp.Loads.Charge(chosen, tr.vol)
		fp.TotalGBHops += tr.vol * float64(chosen.Hops())
	}

	for n, nodes := range sol.Replicas {
		origin := p.Datasets[n].Origin
		for _, v := range nodes {
			if v == origin {
				continue
			}
			paths, err := pathsFor(int(origin), int(v))
			if err != nil {
				return nil, err
			}
			fp.ReplicationGBHops += p.Datasets[n].SizeGB * float64(paths[0].Hops())
		}
	}
	fp.MaxLink, fp.MaxLinkGB = fp.Loads.Max()
	return fp, nil
}
