// Package routing makes the paths of intermediate-result transfers explicit.
// The placement model (internal/placement) only needs shortest-path
// *distances*; this package reconstructs the actual shortest *paths* over
// the two-tier edge cloud, charges transferred volume to every link on the
// path, and reports per-link loads — the "network bottlenecks" the paper's
// introduction names as a core risk of centralised processing. Experiments
// use it to compare the network footprint of placements beyond the pure
// delay objective.
package routing

import (
	"fmt"
	"math"
	"sort"

	"edgerep/internal/graph"
	"edgerep/internal/placement"
	"edgerep/internal/topology"
)

// Link identifies an undirected link by its canonical endpoint order
// (From < To).
type Link struct {
	From, To graph.NodeID
}

// canonical returns the link with ordered endpoints.
func canonical(u, v graph.NodeID) Link {
	if u > v {
		u, v = v, u
	}
	return Link{From: u, To: v}
}

// Path is one routed shortest path.
type Path struct {
	Nodes []graph.NodeID
	// DelayPerGB is the summed link delay along the path.
	DelayPerGB float64
}

// Hops returns the number of links on the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Router resolves shortest paths over a topology through the topology's
// shared graph.DistanceCache, so the Dijkstra trees that built the delay
// matrix also serve path reconstruction — no per-router recomputation.
type Router struct {
	top   *topology.Topology
	cache *graph.DistanceCache
}

// NewRouter builds a Router for a topology.
func NewRouter(top *topology.Topology) *Router {
	return &Router{top: top, cache: top.DistanceCache()}
}

// Path returns the shortest path from src to dst. Paths from the same
// source share one memoized Dijkstra tree, so repeated lookups are cheap;
// trees are shared with every other consumer of the topology's distances.
func (r *Router) Path(src, dst graph.NodeID) (Path, error) {
	tree := r.cache.Shortest(src)
	nodes := tree.PathTo(dst)
	if nodes == nil {
		return Path{}, fmt.Errorf("routing: no path from %d to %d", src, dst)
	}
	return Path{Nodes: nodes, DelayPerGB: tree.Dist[dst]}, nil
}

// LoadMap accumulates transferred volume per link.
type LoadMap map[Link]float64

// Charge adds vol GB to every link of the path.
func (lm LoadMap) Charge(p Path, vol float64) {
	for i := 1; i < len(p.Nodes); i++ {
		lm[canonical(p.Nodes[i-1], p.Nodes[i])] += vol
	}
}

// Total returns the volume·hop sum across all links.
func (lm LoadMap) Total() float64 {
	t := 0.0
	for _, v := range lm {
		t += v
	}
	return t
}

// Max returns the most-loaded link and its load; zero-value link when empty.
func (lm LoadMap) Max() (Link, float64) {
	var bestLink Link
	best := 0.0
	// Deterministic scan order.
	links := make([]Link, 0, len(lm))
	for l := range lm {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	for _, l := range links {
		if lm[l] > best {
			bestLink, best = l, lm[l]
		}
	}
	return bestLink, best
}

// Footprint summarizes the network cost of a placement solution.
type Footprint struct {
	// TotalGBHops is Σ over transfers of volume × hops: the aggregate
	// traffic the placement injects into the WMAN.
	TotalGBHops float64
	// MaxLinkGB is the volume crossing the most-loaded link (the
	// bottleneck).
	MaxLinkGB float64
	// MaxLink is that link.
	MaxLink Link
	// ReplicationGBHops is the one-off traffic of copying replicas from
	// dataset origins to their placement sites.
	ReplicationGBHops float64
	// Loads is the full per-link load map of query transfers.
	Loads LoadMap
}

// MeasureFootprint routes every intermediate-result transfer of a solution
// (replica node → query home, volume α·|S_n|) and every replica copy
// (origin → replica node, volume |S_n|) and aggregates link loads.
func MeasureFootprint(p *placement.Problem, sol *placement.Solution, r *Router) (*Footprint, error) {
	fp := &Footprint{Loads: make(LoadMap)}
	for _, a := range sol.Assignments {
		d, ok := p.Demand(a.Query, a.Dataset)
		if !ok {
			return nil, fmt.Errorf("routing: assignment for non-demanded dataset %d of query %d", a.Dataset, a.Query)
		}
		path, err := r.Path(a.Node, p.Queries[a.Query].Home)
		if err != nil {
			return nil, err
		}
		vol := p.Datasets[a.Dataset].SizeGB * d.Selectivity
		fp.Loads.Charge(path, vol)
		fp.TotalGBHops += vol * float64(path.Hops())
	}
	for n, nodes := range sol.Replicas {
		origin := p.Datasets[n].Origin
		for _, v := range nodes {
			if v == origin {
				continue
			}
			path, err := r.Path(origin, v)
			if err != nil {
				return nil, err
			}
			fp.ReplicationGBHops += p.Datasets[n].SizeGB * float64(path.Hops())
		}
	}
	fp.MaxLink, fp.MaxLinkGB = fp.Loads.Max()
	return fp, nil
}

// BottleneckUtilization relates the bottleneck link's carried volume to the
// mean link load — a dispersion measure: 1 means perfectly balanced, large
// values mean one link carries the traffic.
func (fp *Footprint) BottleneckUtilization() float64 {
	if len(fp.Loads) == 0 {
		return 0
	}
	mean := fp.Loads.Total() / float64(len(fp.Loads))
	if mean == 0 {
		return 0
	}
	return fp.MaxLinkGB / mean
}

// VerifyPathsMatchDistances checks that every routed path's delay equals the
// topology's distance matrix entry — the consistency invariant between this
// package and the placement model's delay terms.
func VerifyPathsMatchDistances(top *topology.Topology, r *Router) error {
	for _, u := range top.ComputeNodes {
		for _, v := range top.ComputeNodes {
			path, err := r.Path(u, v)
			if err != nil {
				return err
			}
			want := top.TransferDelayPerGB(u, v)
			if math.Abs(path.DelayPerGB-want) > 1e-9 {
				return fmt.Errorf("routing: path delay %v != matrix %v for %d→%d",
					path.DelayPerGB, want, u, v)
			}
		}
	}
	return nil
}
