package routing

import (
	"math"
	"testing"

	"edgerep/internal/baselines"
	"edgerep/internal/cluster"
	"edgerep/internal/core"
	"edgerep/internal/graph"
	"edgerep/internal/placement"
	"edgerep/internal/topology"
	"edgerep/internal/workload"
)

func instance(t testing.TB, seed int64) (*placement.Problem, *placement.Solution, *topology.Topology) {
	t.Helper()
	tc := topology.DefaultConfig()
	tc.Seed = seed
	top := topology.MustGenerate(tc)
	wc := workload.DefaultConfig()
	wc.Seed = seed
	wc.NumDatasets = 10
	wc.NumQueries = 40
	w := workload.MustGenerate(wc, top)
	p, err := placement.NewProblem(cluster.New(top), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ApproG(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, res.Solution, top
}

func TestPathsMatchDistanceMatrix(t *testing.T) {
	_, _, top := instance(t, 1)
	r := NewRouter(top)
	if err := VerifyPathsMatchDistances(top, r); err != nil {
		t.Fatal(err)
	}
}

func TestPathEndpointsAndHops(t *testing.T) {
	_, _, top := instance(t, 2)
	r := NewRouter(top)
	u := top.ComputeNodes[0]
	v := top.ComputeNodes[len(top.ComputeNodes)-1]
	p, err := r.Path(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[0] != u || p.Nodes[len(p.Nodes)-1] != v {
		t.Fatalf("path endpoints %v, want %d..%d", p.Nodes, u, v)
	}
	if p.Hops() != len(p.Nodes)-1 {
		t.Fatalf("Hops() = %d for %d nodes", p.Hops(), len(p.Nodes))
	}
	self, err := r.Path(u, u)
	if err != nil {
		t.Fatal(err)
	}
	if self.Hops() != 0 || self.DelayPerGB != 0 {
		t.Fatalf("self path %+v", self)
	}
}

func TestPathUnreachable(t *testing.T) {
	g := graph.New(2) // no edges
	top := &topology.Topology{
		Graph: g,
		Nodes: []topology.Node{
			{ID: 0, Kind: topology.Cloudlet, CapacityGHz: 10, ProcDelayPerGB: 1},
			{ID: 1, Kind: topology.Cloudlet, CapacityGHz: 10, ProcDelayPerGB: 1},
		},
		ComputeNodes: []graph.NodeID{0, 1},
		Delays:       graph.NewDistanceCache(g).Matrix(),
	}
	r := NewRouter(top)
	if _, err := r.Path(0, 1); err == nil {
		t.Fatal("path across disconnected graph accepted")
	}
}

func TestLoadMapCharge(t *testing.T) {
	lm := make(LoadMap)
	p := Path{Nodes: []graph.NodeID{3, 1, 2}}
	lm.Charge(p, 2.5)
	if lm[canonical(1, 3)] != 2.5 || lm[canonical(1, 2)] != 2.5 {
		t.Fatalf("charge wrong: %v", lm)
	}
	lm.Charge(Path{Nodes: []graph.NodeID{1, 2}}, 1.5)
	if lm[canonical(1, 2)] != 4.0 {
		t.Fatalf("accumulation wrong: %v", lm)
	}
	if lm.Total() != 2.5+4.0 {
		t.Fatalf("Total = %v", lm.Total())
	}
	link, load := lm.Max()
	if load != 4.0 || link != canonical(1, 2) {
		t.Fatalf("Max = %v %v", link, load)
	}
}

func TestMeasureFootprint(t *testing.T) {
	p, sol, top := instance(t, 3)
	r := NewRouter(top)
	fp, err := MeasureFootprint(p, sol, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Assignments) > 0 && fp.Loads.Total() == 0 {
		// All transfers local (replica at home) is possible but unlikely
		// across 40 queries; treat as suspicious.
		t.Fatal("no link load despite assignments")
	}
	if fp.TotalGBHops < 0 || fp.MaxLinkGB < 0 || fp.ReplicationGBHops < 0 {
		t.Fatalf("negative footprint: %+v", fp)
	}
	if fp.MaxLinkGB > fp.Loads.Total()+1e-9 {
		t.Fatal("bottleneck exceeds total load")
	}
	if fp.BottleneckUtilization() < 1 && len(fp.Loads) > 0 {
		t.Fatalf("bottleneck utilization %v below 1", fp.BottleneckUtilization())
	}
	// Cross-check TotalGBHops against an independent computation.
	want := 0.0
	for _, a := range sol.Assignments {
		d, _ := p.Demand(a.Query, a.Dataset)
		path, err := r.Path(a.Node, p.Queries[a.Query].Home)
		if err != nil {
			t.Fatal(err)
		}
		want += p.Datasets[a.Dataset].SizeGB * d.Selectivity * float64(path.Hops())
	}
	if math.Abs(fp.TotalGBHops-want) > 1e-9 {
		t.Fatalf("TotalGBHops %v, want %v", fp.TotalGBHops, want)
	}
}

// Per-GB traffic of any feasible placement is bounded by the network's hop
// diameter: no transfer can take more hops than the longest shortest path,
// and intermediate results never exceed the dataset volume (α ≤ 1).
func TestFootprintPerGBBoundedByHopDiameter(t *testing.T) {
	for _, mk := range []struct {
		name string
		run  func(*placement.Problem) (*placement.Solution, error)
	}{
		{"Appro-G", func(p *placement.Problem) (*placement.Solution, error) {
			r, err := core.ApproG(p, core.Options{})
			if err != nil {
				return nil, err
			}
			return r.Solution, nil
		}},
		{"Greedy-G", baselines.GreedyG},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			tc := topology.DefaultConfig()
			tc.Seed = seed
			top := topology.MustGenerate(tc)
			wc := workload.DefaultConfig()
			wc.Seed = seed
			wc.NumDatasets = 10
			wc.NumQueries = 40
			w := workload.MustGenerate(wc, top)
			p, err := placement.NewProblem(cluster.New(top), w, 3)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := mk.run(p)
			if err != nil {
				t.Fatal(err)
			}
			r := NewRouter(top)
			fp, err := MeasureFootprint(p, sol, r)
			if err != nil {
				t.Fatal(err)
			}
			// Hop diameter over compute nodes.
			maxHops := 0
			for _, u := range top.ComputeNodes {
				for _, v := range top.ComputeNodes {
					path, err := r.Path(u, v)
					if err != nil {
						t.Fatal(err)
					}
					if path.Hops() > maxHops {
						maxHops = path.Hops()
					}
				}
			}
			if vol := sol.Volume(p); vol > 0 {
				if per := fp.TotalGBHops / vol; per > float64(maxHops) {
					t.Fatalf("%s seed %d: %.2f GB·hops per admitted GB exceeds hop diameter %d",
						mk.name, seed, per, maxHops)
				}
			}
		}
	}
}

func TestFootprintEmptySolution(t *testing.T) {
	p, _, top := instance(t, 4)
	empty := placement.NewSolution()
	fp, err := MeasureFootprint(p, empty, NewRouter(top))
	if err != nil {
		t.Fatal(err)
	}
	if fp.TotalGBHops != 0 || fp.MaxLinkGB != 0 || fp.BottleneckUtilization() != 0 {
		t.Fatalf("non-zero footprint for empty solution: %+v", fp)
	}
}

func BenchmarkMeasureFootprint(b *testing.B) {
	p, sol, top := instance(b, 1)
	r := NewRouter(top)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureFootprint(p, sol, r); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultipathReducesBottleneckOnAverage(t *testing.T) {
	// Load-aware selection is greedy per transfer, so individual seeds can
	// regress slightly; the mean over several instances must improve (or
	// at least not worsen) the bottleneck, at the cost of extra total
	// traffic at most stretch× the single-path footprint.
	var singleSum, multiSum float64
	for seed := int64(1); seed <= 6; seed++ {
		p, sol, top := instance(t, seed)
		single, err := MeasureFootprint(p, sol, NewRouter(top))
		if err != nil {
			t.Fatal(err)
		}
		multi, err := MeasureFootprintMultipath(p, sol, top, 3, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		singleSum += single.MaxLinkGB
		multiSum += multi.MaxLinkGB
		if multi.TotalGBHops < single.TotalGBHops-1e-9 {
			// Longer alternates can only add hops; fewer would mean a
			// transfer was dropped.
			if single.TotalGBHops/multi.TotalGBHops > 1.5 {
				t.Fatalf("seed %d: multipath lost traffic: %.2f vs %.2f",
					seed, multi.TotalGBHops, single.TotalGBHops)
			}
		}
	}
	if multiSum > singleSum+1e-9 {
		t.Fatalf("load-aware routing worsened the mean bottleneck: %.2f vs %.2f",
			multiSum/6, singleSum/6)
	}
	t.Logf("mean bottleneck: single %.2f GB, load-aware %.2f GB", singleSum/6, multiSum/6)
}

func TestMultipathK1EqualsSinglePath(t *testing.T) {
	p, sol, top := instance(t, 6)
	single, err := MeasureFootprint(p, sol, NewRouter(top))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MeasureFootprintMultipath(p, sol, top, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi.TotalGBHops-single.TotalGBHops) > 1e-6 {
		t.Fatalf("k=1 multipath %.3f != single-path %.3f",
			multi.TotalGBHops, single.TotalGBHops)
	}
	if math.Abs(multi.MaxLinkGB-single.MaxLinkGB) > 1e-6 {
		t.Fatalf("k=1 bottleneck %.3f != single-path %.3f",
			multi.MaxLinkGB, single.MaxLinkGB)
	}
}

func TestMultipathValidation(t *testing.T) {
	p, sol, top := instance(t, 7)
	if _, err := MeasureFootprintMultipath(p, sol, top, 0, 1.5); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := MeasureFootprintMultipath(p, sol, top, 2, 0.5); err == nil {
		t.Fatal("stretch<1 accepted")
	}
}
