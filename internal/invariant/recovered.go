// Recovery invariant: a recovered engine must be FIELD-IDENTICAL to a
// never-crashed engine fed the same input sequence — not merely "close", and
// not merely passing the solution invariants. CheckRecovered compares the
// two engines' canonical state dumps (online.EngineState, via StateDump())
// one field at a time so a divergence names the first field that differs
// instead of reporting an opaque struct mismatch.
//
// The comparison is reflective over any struct type rather than typed to
// online.EngineState because the online package's own tests call into
// invariant — a typed signature would close an import cycle. The testbed's
// rehydration check reuses it for its own dump type.
package invariant

import (
	"fmt"
	"reflect"
)

// CheckRecovered verifies that recovered — typically the canonical state
// dump of an engine rebuilt by online.Recover from a journal — is
// field-identical to reference, the dump of an engine that processed the
// same inputs without ever crashing. Both must be pointers to the same
// struct type. It returns nil when every field matches, and an error naming
// the first differing field otherwise.
func CheckRecovered(recovered, reference any) error {
	gv := reflect.ValueOf(recovered)
	wv := reflect.ValueOf(reference)
	if gv.Kind() != reflect.Pointer || wv.Kind() != reflect.Pointer || gv.IsNil() || wv.IsNil() {
		return fmt.Errorf("invariant: CheckRecovered wants non-nil struct pointers, got %T and %T", recovered, reference)
	}
	gv, wv = gv.Elem(), wv.Elem()
	if gv.Type() != wv.Type() || gv.Kind() != reflect.Struct {
		return fmt.Errorf("invariant: CheckRecovered wants matching struct types, got %T and %T", recovered, reference)
	}
	ty := gv.Type()
	for i := 0; i < ty.NumField(); i++ {
		if !ty.Field(i).IsExported() {
			continue
		}
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			return fmt.Errorf("invariant: recovered state diverges at %s: recovered %+v, reference %+v",
				ty.Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
	return nil
}
