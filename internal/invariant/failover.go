// Failover audit: proves a leader→follower promotion preserved the decision
// history exactly once. The argument is structural — the engine is
// deterministic, so if (a) the promoted leader's handoff snapshot equals the
// state an independent replay of the dead leader's journal reaches, and (b)
// the concatenation old-journal ++ new-journal replays cleanly with every
// recorded outcome matching (online.ErrDivergent otherwise), then no acked
// decision was lost, none was applied twice, and no capacity was overcommitted
// across the cut: a double-admit or overcommit would change the replayed
// engine's state and trip the outcome cross-check at the first divergence.

package invariant

import (
	"bytes"
	"encoding/json"
	"fmt"

	"edgerep/internal/journal"
	"edgerep/internal/online"
	"edgerep/internal/placement"
)

// CheckFailover audits a promotion. oldDir is the dead leader's journal
// directory, newDir the promoted leader's (which must carry the handoff
// snapshot at LSN 0). live, when non-nil, is the promoted engine's current
// state dump, checked against the merged replay's final state. opt should
// carry the engine options both leaders ran with (Journal is ignored).
func CheckFailover(p *placement.Problem, expectedArrivals int, opt online.Options, oldDir, newDir string, live *online.EngineState) error {
	opt.Journal = nil
	opt.SnapshotEvery = 0

	// (a) Replay the dead leader's durable records from scratch — no
	// snapshot shortcut, so the replay itself re-validates every outcome —
	// and compare against the handoff snapshot the promotion published.
	oldSt, err := journal.Load(oldDir)
	if err != nil {
		return fmt.Errorf("invariant: load old leader journal: %w", err)
	}
	oldEng, err := online.Recover(p, expectedArrivals, opt, &journal.State{Records: oldSt.Records})
	if err != nil {
		return fmt.Errorf("invariant: replay old leader journal: %w", err)
	}
	snapBytes, err := journal.SnapshotAt(newDir, 0)
	if err != nil {
		return fmt.Errorf("invariant: promoted leader lacks a handoff snapshot: %w", err)
	}
	var handoff online.EngineState
	if err := json.Unmarshal(snapBytes, &handoff); err != nil {
		return fmt.Errorf("invariant: decode handoff snapshot: %w", err)
	}
	// Canonical-JSON equality: both sides normalized the same way, so a
	// nil-versus-empty slice difference from the snapshot round trip cannot
	// mask (or fake) a real divergence.
	wantJSON, err := json.Marshal(oldEng.StateDump())
	if err != nil {
		return fmt.Errorf("invariant: marshal replayed old state: %w", err)
	}
	gotJSON, err := json.Marshal(&handoff)
	if err != nil {
		return fmt.Errorf("invariant: marshal handoff snapshot: %w", err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		var rehydrated online.EngineState
		if err := json.Unmarshal(wantJSON, &rehydrated); err != nil {
			return fmt.Errorf("invariant: rehydrate replayed old state: %w", err)
		}
		if err := CheckRecovered(&handoff, &rehydrated); err != nil {
			return fmt.Errorf("invariant: handoff snapshot diverges from old-journal replay: %w", err)
		}
		return fmt.Errorf("invariant: handoff snapshot diverges from old-journal replay (states JSON-unequal)")
	}

	// (b) The merged stream old ++ new must replay cleanly end to end: the
	// promoted leader's decisions were priced on top of exactly the state
	// the old journal ends in, and every outcome must reproduce.
	newSt, err := journal.Load(newDir)
	if err != nil {
		return fmt.Errorf("invariant: load promoted leader journal: %w", err)
	}
	merged := make([][]byte, 0, len(oldSt.Records)+len(newSt.Records))
	merged = append(merged, oldSt.Records...)
	merged = append(merged, newSt.Records...)
	mergedEng, err := online.Recover(p, expectedArrivals, opt, &journal.State{Records: merged})
	if err != nil {
		return fmt.Errorf("invariant: merged old+new replay diverges: %w", err)
	}
	if live != nil {
		if err := CheckRecovered(mergedEng.StateDump(), live); err != nil {
			return fmt.Errorf("invariant: merged replay does not reach the live promoted state: %w", err)
		}
	}
	return nil
}
