package invariant

import (
	"math"
	"strings"
	"testing"

	"edgerep/internal/cluster"
	"edgerep/internal/core"
	"edgerep/internal/graph"
	"edgerep/internal/placement"
	"edgerep/internal/topology"
	"edgerep/internal/workload"
)

// feasibleInstance builds a paper-default instance and solves it with
// Appro-G, giving the tests a known-good (problem, solution) pair to break.
func feasibleInstance(t *testing.T, seed int64) (*placement.Problem, *placement.Solution) {
	t.Helper()
	tc := topology.DefaultConfig()
	tc.Seed = seed
	top := topology.MustGenerate(tc)
	wc := workload.DefaultConfig()
	wc.Seed = seed
	wc.NumDatasets = 10
	wc.NumQueries = 40
	w := workload.MustGenerate(wc, top)
	p, err := placement.NewProblem(cluster.New(top), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ApproG(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Admitted) == 0 {
		t.Fatal("instance admits nothing; tests below need admissions to corrupt")
	}
	return p, res.Solution
}

func cloneSolution(s *placement.Solution) *placement.Solution {
	c := placement.NewSolution()
	for n, vs := range s.Replicas {
		c.Replicas[n] = append([]graph.NodeID(nil), vs...)
	}
	c.Assignments = append([]placement.Assignment(nil), s.Assignments...)
	c.Admitted = append([]workload.QueryID(nil), s.Admitted...)
	return c
}

// cloneProblem copies the query slice so tests can corrupt deadlines and
// demands without touching the shared instance.
func cloneProblem(p *placement.Problem) *placement.Problem {
	cp := *p
	cp.Queries = append([]workload.Query(nil), p.Queries...)
	return &cp
}

func kinds(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Kind]++
	}
	return m
}

func wantKind(t *testing.T, vs []Violation, kind string) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("no violations, want kind %q", kind)
	}
	if kinds(vs)[kind] == 0 {
		t.Fatalf("violations %v lack kind %q", vs, kind)
	}
}

func TestFeasibleSolutionPasses(t *testing.T) {
	p, s := feasibleInstance(t, 1)
	if vs := Check(p, s, Options{ReportedVolume: s.Volume(p)}); len(vs) != 0 {
		t.Fatalf("feasible Appro-G solution flagged:\n%v", vs)
	}
	if err := CheckSolution(p, s, s.Volume(p)); err != nil {
		t.Fatal(err)
	}
	if err := CheckAdmissions(p, s, s.Volume(p)); err != nil {
		t.Fatal(err)
	}
}

func TestKBoundViolation(t *testing.T) {
	p, s := feasibleInstance(t, 1)
	bad := cloneSolution(s)
	// Blow past K on dataset 0 using distinct compute nodes.
	for _, v := range p.Cloud.ComputeNodes() {
		bad.AddReplica(0, v)
		if len(bad.Replicas[0]) > p.MaxReplicas {
			break
		}
	}
	wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "k-bound")
}

func TestReplicaViolation(t *testing.T) {
	p, s := feasibleInstance(t, 1)
	bad := cloneSolution(s)
	// Yank the replica out from under the first assignment.
	a := bad.Assignments[0]
	nodes := bad.Replicas[a.Dataset][:0]
	for _, v := range bad.Replicas[a.Dataset] {
		if v != a.Node {
			nodes = append(nodes, v)
		}
	}
	bad.Replicas[a.Dataset] = nodes
	wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "replica")
}

func TestDeadlineViolation(t *testing.T) {
	p, s := feasibleInstance(t, 1)
	bp := cloneProblem(p)
	q := s.Admitted[0]
	bp.Queries[q].DeadlineSec = 0
	wantKind(t, Check(bp, s, Options{ReportedVolume: math.NaN()}), "deadline")
}

func TestCapacityViolation(t *testing.T) {
	p, s := feasibleInstance(t, 1)
	bp := cloneProblem(p)
	q := s.Admitted[0]
	bp.Queries[q].ComputePerGB *= 1e9
	wantKind(t, Check(bp, s, Options{IgnoreCapacity: false, ReportedVolume: math.NaN()}), "capacity")

	// The online variant deliberately waives exactly this constraint.
	vs := Check(bp, s, Options{IgnoreCapacity: true, ReportedVolume: math.NaN()})
	if kinds(vs)["capacity"] != 0 {
		t.Fatalf("IgnoreCapacity still reported capacity violations: %v", vs)
	}
}

func TestObjectiveViolation(t *testing.T) {
	p, s := feasibleInstance(t, 1)
	err := CheckSolution(p, s, s.Volume(p)+1)
	if err == nil || !strings.Contains(err.Error(), "objective") {
		t.Fatalf("mis-reported volume not caught: %v", err)
	}
	// NaN opts out of the reported-volume cross-check only.
	if vs := Check(p, s, Options{ReportedVolume: math.NaN()}); len(vs) != 0 {
		t.Fatalf("NaN reported volume should skip the cross-check: %v", vs)
	}
}

func TestStructureViolations(t *testing.T) {
	p, s := feasibleInstance(t, 1)

	t.Run("unsorted admitted", func(t *testing.T) {
		if len(s.Admitted) < 2 {
			t.Skip("needs two admissions")
		}
		bad := cloneSolution(s)
		bad.Admitted[0], bad.Admitted[1] = bad.Admitted[1], bad.Admitted[0]
		wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "structure")
	})

	t.Run("assignment for non-admitted query", func(t *testing.T) {
		bad := cloneSolution(s)
		bad.Admitted = bad.Admitted[1:]
		wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "structure")
	})

	t.Run("missing assignment", func(t *testing.T) {
		bad := cloneSolution(s)
		bad.Assignments = bad.Assignments[1:]
		wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "structure")
	})

	t.Run("duplicate assignment", func(t *testing.T) {
		bad := cloneSolution(s)
		bad.Assignments = append(bad.Assignments, bad.Assignments[0])
		wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "structure")
	})

	t.Run("replica on non-compute node", func(t *testing.T) {
		bad := cloneSolution(s)
		bad.Replicas[0] = append([]graph.NodeID(nil), graph.NodeID(1<<20))
		wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "structure")
	})

	t.Run("replica for unknown dataset", func(t *testing.T) {
		bad := cloneSolution(s)
		bad.Replicas[workload.DatasetID(len(p.Datasets)+5)] = []graph.NodeID{p.Cloud.ComputeNodes()[0]}
		wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "structure")
	})

	t.Run("admitted unknown query", func(t *testing.T) {
		bad := cloneSolution(s)
		bad.Admitted = append(bad.Admitted, workload.QueryID(len(p.Queries)+7))
		wantKind(t, Check(p, bad, Options{ReportedVolume: math.NaN()}), "structure")
	})
}

func TestErrorJoinsAndSortsViolations(t *testing.T) {
	p, s := feasibleInstance(t, 1)
	bad := cloneSolution(s)
	bad.Admitted = bad.Admitted[1:]           // structure
	err := CheckSolution(p, bad, s.Volume(p)) // and objective (volume shrank)
	if err == nil {
		t.Fatal("corrupted solution passed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "structure:") || !strings.Contains(msg, "objective:") {
		t.Fatalf("error lacks expected kinds: %v", msg)
	}
	if strings.Index(msg, "objective:") > strings.Index(msg, "structure:") {
		t.Fatalf("violations not sorted by kind: %v", msg)
	}
}
