package invariant_test

import (
	"strings"
	"testing"

	"edgerep/internal/federation"
	"edgerep/internal/invariant"
	"edgerep/internal/journal"
	"edgerep/internal/online"
	"edgerep/internal/server"
)

// promoteOnce builds a single-shard leader, drives load through it, kills it
// mid-history, and promotes a standby that shipped its sealed prefix —
// returning everything CheckFailover needs.
func promoteOnce(t *testing.T, count int) (cfg federation.Config, oldDir, newDir string, live *online.EngineState) {
	t.Helper()
	oldDir = t.TempDir()
	newDir = t.TempDir() + "/promoted"
	cfg = federation.Config{
		Region: "r0", Instance: server.DefaultInstance(), Shards: 1,
		ExpectedArrivals: count, SegmentBytes: 2048, NoSync: true, DeterministicClock: true,
	}
	l, err := federation.StartLeader(cfg, oldDir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Drive(l.Server(), server.DriveConfig{Count: count, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	st, err := federation.NewStandby(cfg, &federation.LeaderTransport{Leader: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if err := l.Kill(); err != nil {
		t.Fatal(err)
	}
	nl, err := st.Promote(oldDir, newDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Drive(nl.Server(), server.DriveConfig{Count: count + 50, Seed: 3, StartIndex: count}); err != nil {
		t.Fatal(err)
	}
	if err := nl.Drain(); err != nil {
		t.Fatal(err)
	}
	return cfg, oldDir, newDir, nl.Server().StateDump()
}

func TestCheckFailoverAcceptsCleanPromotion(t *testing.T) {
	cfg, oldDir, newDir, live := promoteOnce(t, 300)
	p, err := server.BuildInstance(cfg.Instance)
	if err != nil {
		t.Fatal(err)
	}
	opt := online.Options{NoFastPath: cfg.NoFastPath}
	if err := invariant.CheckFailover(p, 300, opt, oldDir, newDir, live); err != nil {
		t.Fatalf("clean promotion rejected: %v", err)
	}
	// A nil live state skips only the final comparison.
	if err := invariant.CheckFailover(p, 300, opt, oldDir, newDir, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFailoverCatchesWrongHandoff(t *testing.T) {
	cfg, _, newDir, live := promoteOnce(t, 200)
	p, err := server.BuildInstance(cfg.Instance)
	if err != nil {
		t.Fatal(err)
	}
	opt := online.Options{}
	// Auditing the promotion against the WRONG old journal (an empty one)
	// must fail at the handoff-snapshot comparison: the snapshot encodes
	// state the empty history cannot reach.
	emptyDir := t.TempDir()
	err = invariant.CheckFailover(p, 200, opt, emptyDir, newDir, live)
	if err == nil {
		t.Fatal("handoff against an empty old journal accepted")
	}
	if !strings.Contains(err.Error(), "handoff snapshot diverges") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}

func TestCheckFailoverRequiresHandoffSnapshot(t *testing.T) {
	cfg, oldDir, _, _ := promoteOnce(t, 200)
	p, err := server.BuildInstance(cfg.Instance)
	if err != nil {
		t.Fatal(err)
	}
	// A "promoted" directory with no snapshot at LSN 0 is not auditable.
	bare := t.TempDir()
	jn, err := journal.Open(bare, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jn.Append([]byte(`{"kind":"restore","query":-1,"node":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := invariant.CheckFailover(p, 200, online.Options{}, oldDir, bare, nil); err == nil {
		t.Fatal("missing handoff snapshot accepted")
	} else if !strings.Contains(err.Error(), "handoff snapshot") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}
