package invariant

import (
	"fmt"
	"math"

	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/placement"
	"edgerep/internal/workload"
)

// TraceOptions tunes CheckTrace.
type TraceOptions struct {
	// Online marks a trace produced by the online engine, whose capacity is
	// temporal (allocations are released when holds expire). A replay cannot
	// reconstruct instantaneous load, so capacity-dependent rejection
	// reasons (capacity-exhausted, k-bound, bundle-infeasible) are trusted;
	// deadline-violated and disconnected are still recomputed from first
	// principles, and a capacity-class reason recorded for a query that is
	// statically deadline-infeasible is flagged as a contradiction.
	Online bool
	// Final, when non-nil, is the solution the traced run returned; the
	// state replayed from the trace's replica and admit events must equal it
	// exactly (same replica sets, same admitted queries).
	Final *placement.Solution
}

// CheckTrace replays the events of ONE trace run (see
// instrument.SplitTraceRuns) against the problem instance and verifies that
// the engine's recorded decisions are consistent with ILP recomputation:
//
//   - structure: the run opens with a begin event, nothing follows end, and
//     admit events carry parallel Datasets/Nodes;
//   - admits: every recorded assignment meets its deadline (4), fits the
//     replayed capacity (2) (skipped online), respects the K bound (5) as
//     replicas materialize, and the recorded volume matches the bundle;
//   - rejects: placement.ClassifyRejection, run against the replayed state
//     at the moment of the rejection, must reproduce the recorded reason —
//     an engine cannot claim "capacity-exhausted" when the replayed ledger
//     still has room, or "deadline-violated" when a feasible node exists;
//   - end: the recorded objective matches the replayed solution's volume,
//     and (with Final) the replayed state equals the solution the run
//     actually returned.
//
// It returns every violation found, nil when the trace is clean.
func CheckTrace(p *placement.Problem, events []instrument.TraceEvent, opt TraceOptions) []Violation {
	var out []Violation
	add := func(kind, format string, args ...interface{}) {
		out = append(out, Violation{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}

	if len(events) == 0 {
		add("structure", "empty trace run")
		return out
	}
	if events[0].Event != instrument.EventBegin {
		add("structure", "run does not open with a begin event (got %q)", events[0].Event)
	}

	avail := make(map[graph.NodeID]float64)
	for _, v := range p.Cloud.ComputeNodes() {
		avail[v] = p.Cloud.Available(v)
	}
	sol := placement.NewSolution()
	down := make(map[graph.NodeID]bool)
	ended := false

	addReplica := func(seq int64, ds workload.DatasetID, v graph.NodeID) {
		if int(ds) < 0 || int(ds) >= len(p.Datasets) {
			add("structure", "event %d: unknown dataset %d", seq, ds)
			return
		}
		if sol.HasReplica(ds, v) {
			return
		}
		if sol.ReplicaCount(ds) >= p.MaxReplicas {
			add("k-bound", "event %d: replica of dataset %d at node %d exceeds K=%d",
				seq, ds, v, p.MaxReplicas)
		}
		sol.AddReplica(ds, v)
	}

	for i := range events {
		ev := &events[i]
		if ended {
			add("structure", "event %d: %q event after end", ev.Seq, ev.Event)
		}
		switch ev.Event {
		case instrument.EventBegin, instrument.EventPhase:
			// structural only

		case instrument.EventReplica:
			addReplica(ev.Seq, workload.DatasetID(ev.Dataset), graph.NodeID(ev.Node))

		case instrument.EventAdmit:
			q := workload.QueryID(ev.Query)
			if int(q) < 0 || int(q) >= len(p.Queries) {
				add("structure", "event %d: admit of unknown query %d", ev.Seq, ev.Query)
				continue
			}
			if len(ev.Datasets) != len(ev.Nodes) {
				add("structure", "event %d: admit with %d datasets but %d nodes",
					ev.Seq, len(ev.Datasets), len(ev.Nodes))
				continue
			}
			var as []placement.Assignment
			vol := 0.0
			for j := range ev.Datasets {
				ds := workload.DatasetID(ev.Datasets[j])
				v := graph.NodeID(ev.Nodes[j])
				if int(ds) < 0 || int(ds) >= len(p.Datasets) {
					add("structure", "event %d: admit names unknown dataset %d", ev.Seq, ds)
					continue
				}
				if !p.MeetsDeadline(q, ds, v) {
					add("deadline", "event %d: query %d admitted with dataset %d at node %d violating its deadline",
						ev.Seq, q, ds, v)
				}
				need := p.ComputeNeed(q, ds)
				if !opt.Online {
					if need > avail[v]+capEps {
						add("capacity", "event %d: query %d needs %.4f GHz on node %d with only %.4f replayed",
							ev.Seq, q, need, v, avail[v])
					}
					avail[v] -= need
					if avail[v] < 0 {
						avail[v] = 0
					}
				}
				addReplica(ev.Seq, ds, v)
				as = append(as, placement.Assignment{Query: q, Dataset: ds, Node: v})
				vol += p.Datasets[ds].SizeGB
			}
			if ev.Volume != 0 && math.Abs(ev.Volume-vol) > volumeEps {
				add("objective", "event %d: admit of query %d records volume %.6f, assignments sum to %.6f",
					ev.Seq, q, ev.Volume, vol)
			}
			sol.Admit(q, as)

		case instrument.EventReject:
			q := workload.QueryID(ev.Query)
			if int(q) < 0 || int(q) >= len(p.Queries) {
				add("structure", "event %d: reject of unknown query %d", ev.Seq, ev.Query)
				continue
			}
			checkReject(p, q, ev, avail, sol, down, opt, add)

		case instrument.EventCrash:
			v := graph.NodeID(ev.Node)
			if _, ok := avail[v]; !ok {
				add("structure", "event %d: crash of non-compute node %d", ev.Seq, ev.Node)
				continue
			}
			down[v] = true
			// The node's replicas are gone; repairs must re-establish
			// presence (3) for every admission it served.
			for n := range p.Datasets {
				ds := workload.DatasetID(n)
				if sol.HasReplica(ds, v) {
					sol.RemoveReplica(ds, v)
				}
			}

		case instrument.EventRepair:
			q := workload.QueryID(ev.Query)
			ds := workload.DatasetID(ev.Dataset)
			v := graph.NodeID(ev.Node)
			if ev.Reason != instrument.ReasonRepaired {
				add("structure", "event %d: repair with reason %q", ev.Seq, ev.Reason)
			}
			if int(q) < 0 || int(q) >= len(p.Queries) || int(ds) < 0 || int(ds) >= len(p.Datasets) {
				add("structure", "event %d: repair names unknown query %d or dataset %d", ev.Seq, ev.Query, ev.Dataset)
				continue
			}
			if down[v] {
				add("repair", "event %d: query %d repaired onto crashed node %d", ev.Seq, q, v)
			}
			if !sol.IsAdmitted(q) {
				add("repair", "event %d: repair of query %d, which the replay has not admitted", ev.Seq, q)
				continue
			}
			if !p.MeetsDeadline(q, ds, v) {
				add("deadline", "event %d: repair moves query %d dataset %d to node %d violating its deadline",
					ev.Seq, q, ds, v)
			}
			addReplica(ev.Seq, ds, v)
			if !sol.Reassign(q, ds, v) {
				add("repair", "event %d: repair of query %d dataset %d, but the replay has no such assignment",
					ev.Seq, q, ds)
			}

		case instrument.EventEvict:
			q := workload.QueryID(ev.Query)
			if int(q) < 0 || int(q) >= len(p.Queries) {
				add("structure", "event %d: evict of unknown query %d", ev.Seq, ev.Query)
				continue
			}
			if ev.Reason == "" {
				add("structure", "event %d: evict of query %d without a reason", ev.Seq, q)
			}
			if !sol.IsAdmitted(q) {
				add("evict", "event %d: evict of query %d, which the replay has not admitted", ev.Seq, q)
				continue
			}
			if vol := p.Queries[q].DemandedVolume(p.Datasets); ev.Volume != 0 && math.Abs(ev.Volume-vol) > volumeEps {
				add("objective", "event %d: evict of query %d records volume %.6f, its demands sum to %.6f",
					ev.Seq, q, ev.Volume, vol)
			}
			sol.Unadmit(q)

		case instrument.EventEnd:
			ended = true
			if ev.Volume != 0 || len(sol.Admitted) > 0 {
				if vol := sol.Volume(p); math.Abs(ev.Volume-vol) > volumeEps {
					add("objective", "event %d: end records volume %.6f, replayed solution has %.6f",
						ev.Seq, ev.Volume, vol)
				}
			}

		default:
			add("structure", "event %d: unknown event kind %q", ev.Seq, ev.Event)
		}
	}
	if !ended && !opt.Online {
		add("structure", "run has no end event")
	}

	if opt.Final != nil {
		compareSolutions(p, sol, opt.Final, add)
	}
	return out
}

// checkReject recomputes the rejection classification against the replayed
// state and compares it with the recorded reason.
func checkReject(p *placement.Problem, q workload.QueryID, ev *instrument.TraceEvent,
	avail map[graph.NodeID]float64, sol *placement.Solution, down map[graph.NodeID]bool,
	opt TraceOptions, add func(kind, format string, args ...interface{})) {

	if ev.Reason == "" {
		add("structure", "event %d: reject of query %d without a reason", ev.Seq, q)
		return
	}

	// The capacity-free classification: unlimited capacity, no replicas
	// placed, K never binding. Under it a query classifies as deadline or
	// disconnected exactly when it is statically infeasible — independent of
	// any load the replay cannot see.
	relaxed, _, _ := placement.ClassifyRejection(p, q, placement.RejectionState{
		Avail:        func(graph.NodeID) float64 { return math.Inf(1) },
		HasReplica:   func(workload.DatasetID, graph.NodeID) bool { return false },
		ReplicaCount: func(workload.DatasetID) int { return 0 },
	})

	if opt.Online {
		switch ev.Reason {
		case instrument.ReasonNodeCrashed:
			// Liveness is replayable from crash events and deadline
			// feasibility is load-independent, so this classification must
			// reproduce under infinite capacity with the replayed down set:
			// some demand's every deadline-feasible node is down.
			crashed, _, _ := placement.ClassifyRejection(p, q, placement.RejectionState{
				Avail:        func(graph.NodeID) float64 { return math.Inf(1) },
				HasReplica:   func(workload.DatasetID, graph.NodeID) bool { return false },
				ReplicaCount: func(workload.DatasetID) int { return 0 },
				Down:         func(v graph.NodeID) bool { return down[v] },
			})
			if crashed != instrument.ReasonNodeCrashed {
				add("reject-reason", "event %d: query %d recorded as %q but liveness recomputation says %q",
					ev.Seq, q, ev.Reason, crashed)
			}
			return
		case instrument.ReasonRetryExhausted:
			// Retry budgets are wall-clock engine state a replay cannot
			// reconstruct; trusted, like the capacity-class reasons.
			return
		case instrument.ReasonDeadline, instrument.ReasonDisconnected:
			// Deadline feasibility is load-independent, so these must
			// reproduce exactly under the capacity-free recomputation.
			if relaxed != ev.Reason {
				add("reject-reason", "event %d: query %d recorded as %q but capacity-free recomputation says %q",
					ev.Seq, q, ev.Reason, relaxed)
			}
		case instrument.ReasonCapacity, instrument.ReasonKBound:
			// The load itself cannot be replayed, but a capacity-class
			// reason asserts the named demand had deadline-feasible nodes —
			// which is load-independent and checkable.
			ds := workload.DatasetID(ev.Dataset)
			if int(ds) < 0 || int(ds) >= len(p.Datasets) {
				add("reject-reason", "event %d: query %d reason %q names invalid dataset %d",
					ev.Seq, q, ev.Reason, ev.Dataset)
				return
			}
			feasible := false
			for _, v := range p.Cloud.ComputeNodes() {
				if p.MeetsDeadline(q, ds, v) {
					feasible = true
					break
				}
			}
			if !feasible {
				add("reject-reason", "event %d: query %d recorded as %q on dataset %d, which has no deadline-feasible node",
					ev.Seq, q, ev.Reason, ds)
			}
		}
		return
	}

	reason, ds, node := placement.ClassifyRejection(p, q, placement.RejectionState{
		Avail:        func(v graph.NodeID) float64 { return avail[v] },
		HasReplica:   sol.HasReplica,
		ReplicaCount: sol.ReplicaCount,
		Down:         func(v graph.NodeID) bool { return down[v] },
	})
	if reason != ev.Reason {
		add("reject-reason", "event %d: query %d recorded as %q but replayed state classifies %q",
			ev.Seq, q, ev.Reason, reason)
		return
	}
	if int64(ds) != ev.Dataset || int64(node) != ev.Node {
		add("reject-reason", "event %d: query %d reason %q attributed to dataset %d node %d, replay says dataset %d node %d",
			ev.Seq, q, ev.Reason, ev.Dataset, ev.Node, ds, node)
	}
}

// compareSolutions verifies the replayed state equals the solution the run
// returned: identical replica sets and identical admitted query lists.
func compareSolutions(p *placement.Problem, replayed, final *placement.Solution,
	add func(kind, format string, args ...interface{})) {

	for n := range p.Datasets {
		ds := workload.DatasetID(n)
		a, b := replayed.Replicas[ds], final.Replicas[ds]
		if len(a) != len(b) {
			add("replay", "dataset %d: replay has %d replicas, solution has %d", ds, len(a), len(b))
			continue
		}
		for i := range a { // both sorted by AddReplica
			if a[i] != b[i] {
				add("replay", "dataset %d: replica set mismatch at position %d (replay node %d, solution node %d)",
					ds, i, a[i], b[i])
				break
			}
		}
	}
	if len(replayed.Admitted) != len(final.Admitted) {
		add("replay", "replay admits %d queries, solution admits %d",
			len(replayed.Admitted), len(final.Admitted))
		return
	}
	for i := range replayed.Admitted {
		if replayed.Admitted[i] != final.Admitted[i] {
			add("replay", "admitted query mismatch at position %d (replay %d, solution %d)",
				i, replayed.Admitted[i], final.Admitted[i])
			return
		}
	}
}

// CheckTraceRun is CheckTrace with the violations folded into one error (nil
// when the run is clean).
func CheckTraceRun(p *placement.Problem, events []instrument.TraceEvent, opt TraceOptions) error {
	return toError(CheckTrace(p, events, opt))
}
