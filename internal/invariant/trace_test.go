package invariant

import (
	"testing"

	"edgerep/internal/baselines"
	"edgerep/internal/core"
	"edgerep/internal/instrument"
	"edgerep/internal/online"
	"edgerep/internal/placement"
)

// memorySink collects trace events in order, in process.
type memorySink struct {
	events []instrument.TraceEvent
}

func (m *memorySink) Emit(ev *instrument.TraceEvent) {
	e := *ev
	e.Seq = int64(len(m.events) + 1)
	m.events = append(m.events, e)
}

// capture runs fn with a fresh in-memory trace sink attached and returns the
// events of the single run it produced.
func capture(t *testing.T, fn func()) []instrument.TraceEvent {
	t.Helper()
	sink := &memorySink{}
	instrument.ResetTrace()
	instrument.SetTraceSink(sink)
	defer instrument.ResetTrace()
	fn()
	runs := instrument.SplitTraceRuns(sink.events)
	if len(runs) != 1 {
		t.Fatalf("expected 1 trace run, got %d", len(runs))
	}
	return runs[0]
}

func TestCheckTraceApproG(t *testing.T) {
	p, _ := feasibleInstance(t, 1)
	var sol *placement.Solution
	events := capture(t, func() {
		res, err := core.ApproG(p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol = res.Solution
	})
	if vs := CheckTrace(p, events, TraceOptions{Final: sol}); len(vs) != 0 {
		t.Fatalf("clean Appro-G trace has violations: %v", vs)
	}
}

func TestCheckTraceBaselines(t *testing.T) {
	p, _ := feasibleInstance(t, 2)
	for _, tc := range []struct {
		name string
		run  func(*placement.Problem) (*placement.Solution, error)
	}{
		{"greedy-g", baselines.GreedyG},
		{"graph-g", baselines.GraphG},
		{"popularity-g", baselines.PopularityG},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sol *placement.Solution
			events := capture(t, func() {
				var err error
				sol, err = tc.run(p)
				if err != nil {
					t.Fatal(err)
				}
			})
			if vs := CheckTrace(p, events, TraceOptions{Final: sol}); len(vs) != 0 {
				t.Fatalf("clean %s trace has violations: %v", tc.name, vs)
			}
		})
	}
}

func TestCheckTraceOnline(t *testing.T) {
	p, _ := feasibleInstance(t, 3)
	var sol *placement.Solution
	events := capture(t, func() {
		e := online.NewEngine(p, len(p.Queries), online.Options{})
		for qi := range p.Queries {
			if _, err := e.Offer(online.Arrival{Query: p.Queries[qi].ID, AtSec: float64(qi)}); err != nil {
				t.Fatal(err)
			}
		}
		e.EmitEnd()
		sol = e.Solution()
	})
	if vs := CheckTrace(p, events, TraceOptions{Online: true, Final: sol}); len(vs) != 0 {
		t.Fatalf("clean online trace has violations: %v", vs)
	}
}

func TestCheckTraceCatchesTampering(t *testing.T) {
	p, _ := feasibleInstance(t, 1)
	var sol *placement.Solution
	events := capture(t, func() {
		res, err := core.ApproG(p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol = res.Solution
	})

	t.Run("forged-volume", func(t *testing.T) {
		evs := append([]instrument.TraceEvent(nil), events...)
		forged := false
		for i := range evs {
			if evs[i].Event == instrument.EventAdmit {
				evs[i].Volume += 1
				forged = true
				break
			}
		}
		if !forged {
			t.Fatal("trace has no admit events to forge")
		}
		wantKind(t, CheckTrace(p, evs, TraceOptions{Final: sol}), "objective")
	})

	t.Run("forged-reason", func(t *testing.T) {
		evs := append([]instrument.TraceEvent(nil), events...)
		forged := false
		for i := range evs {
			if evs[i].Event == instrument.EventReject && evs[i].Reason != instrument.ReasonDisconnected {
				evs[i].Reason = instrument.ReasonDisconnected
				forged = true
				break
			}
		}
		if !forged {
			t.Skip("instance produced no rejections to forge")
		}
		wantKind(t, CheckTrace(p, evs, TraceOptions{Final: sol}), "reject-reason")
	})

	t.Run("dropped-admit", func(t *testing.T) {
		var evs []instrument.TraceEvent
		dropped := false
		for _, ev := range events {
			if !dropped && ev.Event == instrument.EventAdmit {
				dropped = true
				continue
			}
			evs = append(evs, ev)
		}
		if !dropped {
			t.Fatal("trace has no admit events to drop")
		}
		vs := CheckTrace(p, evs, TraceOptions{Final: sol})
		if len(vs) == 0 {
			t.Fatal("dropping an admit event went undetected")
		}
	})

	t.Run("truncated-run", func(t *testing.T) {
		wantKind(t, CheckTrace(p, events[:len(events)-1], TraceOptions{}), "structure")
	})
}
