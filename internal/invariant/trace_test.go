package invariant

import (
	"testing"

	"edgerep/internal/baselines"
	"edgerep/internal/core"
	"edgerep/internal/graph"
	"edgerep/internal/instrument"
	"edgerep/internal/online"
	"edgerep/internal/placement"
	"edgerep/internal/workload"
)

// memorySink collects trace events in order, in process.
type memorySink struct {
	events []instrument.TraceEvent
}

func (m *memorySink) Emit(ev *instrument.TraceEvent) {
	e := *ev
	e.Seq = int64(len(m.events) + 1)
	m.events = append(m.events, e)
}

// capture runs fn with a fresh in-memory trace sink attached and returns the
// events of the single run it produced.
func capture(t *testing.T, fn func()) []instrument.TraceEvent {
	t.Helper()
	sink := &memorySink{}
	instrument.ResetTrace()
	instrument.SetTraceSink(sink)
	defer instrument.ResetTrace()
	fn()
	runs := instrument.SplitTraceRuns(sink.events)
	if len(runs) != 1 {
		t.Fatalf("expected 1 trace run, got %d", len(runs))
	}
	return runs[0]
}

func TestCheckTraceApproG(t *testing.T) {
	p, _ := feasibleInstance(t, 1)
	var sol *placement.Solution
	events := capture(t, func() {
		res, err := core.ApproG(p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol = res.Solution
	})
	if vs := CheckTrace(p, events, TraceOptions{Final: sol}); len(vs) != 0 {
		t.Fatalf("clean Appro-G trace has violations: %v", vs)
	}
}

func TestCheckTraceBaselines(t *testing.T) {
	p, _ := feasibleInstance(t, 2)
	for _, tc := range []struct {
		name string
		run  func(*placement.Problem) (*placement.Solution, error)
	}{
		{"greedy-g", baselines.GreedyG},
		{"graph-g", baselines.GraphG},
		{"popularity-g", baselines.PopularityG},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sol *placement.Solution
			events := capture(t, func() {
				var err error
				sol, err = tc.run(p)
				if err != nil {
					t.Fatal(err)
				}
			})
			if vs := CheckTrace(p, events, TraceOptions{Final: sol}); len(vs) != 0 {
				t.Fatalf("clean %s trace has violations: %v", tc.name, vs)
			}
		})
	}
}

func TestCheckTraceOnline(t *testing.T) {
	p, _ := feasibleInstance(t, 3)
	var sol *placement.Solution
	events := capture(t, func() {
		e := online.NewEngine(p, len(p.Queries), online.Options{})
		for qi := range p.Queries {
			if _, err := e.Offer(online.Arrival{Query: p.Queries[qi].ID, AtSec: float64(qi)}); err != nil {
				t.Fatal(err)
			}
		}
		e.EmitEnd()
		sol = e.Solution()
	})
	if vs := CheckTrace(p, events, TraceOptions{Online: true, Final: sol}); len(vs) != 0 {
		t.Fatalf("clean online trace has violations: %v", vs)
	}
}

func TestCheckTraceCatchesTampering(t *testing.T) {
	p, _ := feasibleInstance(t, 1)
	var sol *placement.Solution
	events := capture(t, func() {
		res, err := core.ApproG(p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol = res.Solution
	})

	t.Run("forged-volume", func(t *testing.T) {
		evs := append([]instrument.TraceEvent(nil), events...)
		forged := false
		for i := range evs {
			if evs[i].Event == instrument.EventAdmit {
				evs[i].Volume += 1
				forged = true
				break
			}
		}
		if !forged {
			t.Fatal("trace has no admit events to forge")
		}
		wantKind(t, CheckTrace(p, evs, TraceOptions{Final: sol}), "objective")
	})

	t.Run("forged-reason", func(t *testing.T) {
		evs := append([]instrument.TraceEvent(nil), events...)
		forged := false
		for i := range evs {
			if evs[i].Event == instrument.EventReject && evs[i].Reason != instrument.ReasonDisconnected {
				evs[i].Reason = instrument.ReasonDisconnected
				forged = true
				break
			}
		}
		if !forged {
			t.Skip("instance produced no rejections to forge")
		}
		wantKind(t, CheckTrace(p, evs, TraceOptions{Final: sol}), "reject-reason")
	})

	t.Run("dropped-admit", func(t *testing.T) {
		var evs []instrument.TraceEvent
		dropped := false
		for _, ev := range events {
			if !dropped && ev.Event == instrument.EventAdmit {
				dropped = true
				continue
			}
			evs = append(evs, ev)
		}
		if !dropped {
			t.Fatal("trace has no admit events to drop")
		}
		vs := CheckTrace(p, evs, TraceOptions{Final: sol})
		if len(vs) == 0 {
			t.Fatal("dropping an admit event went undetected")
		}
	})

	t.Run("truncated-run", func(t *testing.T) {
		wantKind(t, CheckTrace(p, events[:len(events)-1], TraceOptions{}), "structure")
	})
}

// TestCheckTraceOnlineWithFailover replays a real online run that includes a
// mid-stream crash: the crash/repair/evict events must reconstruct the
// engine's final state exactly.
func TestCheckTraceOnlineWithFailover(t *testing.T) {
	p, _ := feasibleInstance(t, 5)
	var sol *placement.Solution
	events := capture(t, func() {
		e := online.NewEngine(p, len(p.Queries), online.Options{})
		half := len(p.Queries) / 2
		for qi := 0; qi < half; qi++ {
			if _, err := e.Offer(online.Arrival{Query: p.Queries[qi].ID, AtSec: float64(qi)}); err != nil {
				t.Fatal(err)
			}
		}
		// Crash the node serving the most assignments so far.
		counts := map[graph.NodeID]int{}
		for _, a := range e.Solution().Assignments {
			counts[a.Node]++
		}
		var target graph.NodeID = -1
		for _, v := range p.Cloud.ComputeNodes() {
			if counts[v] > 0 && (target == -1 || counts[v] > counts[target]) {
				target = v
			}
		}
		if target == -1 {
			t.Fatal("nothing assigned before the crash")
		}
		if _, err := e.Crash(float64(half), target); err != nil {
			t.Fatal(err)
		}
		for qi := half; qi < len(p.Queries); qi++ {
			if _, err := e.Offer(online.Arrival{Query: p.Queries[qi].ID, AtSec: float64(qi)}); err != nil {
				t.Fatal(err)
			}
		}
		e.EmitEnd()
		sol = e.Solution()
	})
	sawFailover := false
	for _, ev := range events {
		if ev.Event == instrument.EventCrash || ev.Event == instrument.EventRepair || ev.Event == instrument.EventEvict {
			sawFailover = true
			break
		}
	}
	if !sawFailover {
		t.Fatal("run emitted no failover events")
	}
	if vs := CheckTrace(p, events, TraceOptions{Online: true, Final: sol}); len(vs) != 0 {
		t.Fatalf("clean failover trace has violations: %v", vs)
	}
}

// TestCheckTraceFailoverEventTable feeds hand-rolled traces through the
// replay: the new reasons and events are accepted exactly where the engine
// contract allows them and flagged everywhere else.
func TestCheckTraceFailoverEventTable(t *testing.T) {
	p, _ := feasibleInstance(t, 6)

	// A query every one of whose demands has a deadline-feasible node.
	var q workload.QueryID = -1
	var dss, nodes []int64
	vol := 0.0
	for qi := range p.Queries {
		ok := true
		var d, n []int64
		v := 0.0
		for _, dm := range p.Queries[qi].Demands {
			fn := p.FeasibleNodes(workload.QueryID(qi), dm.Dataset)
			if len(fn) == 0 {
				ok = false
				break
			}
			d = append(d, int64(dm.Dataset))
			n = append(n, int64(fn[0]))
			v += p.Datasets[dm.Dataset].SizeGB
		}
		if ok {
			q, dss, nodes, vol = workload.QueryID(qi), d, n, v
			break
		}
	}
	if q == -1 {
		t.Fatal("no fully feasible query in the instance")
	}
	mk := func(evs ...instrument.TraceEvent) []instrument.TraceEvent {
		out := append([]instrument.TraceEvent{{Event: instrument.EventBegin, Algo: "online"}}, evs...)
		for i := range out {
			out[i].Seq = int64(i + 1)
			out[i].Run = 1
		}
		return out
	}
	admit := instrument.TraceEvent{Event: instrument.EventAdmit, Query: int64(q), Datasets: dss, Nodes: nodes, Volume: vol}
	// Crash events covering every feasible node of q's first demand.
	var crashAll []instrument.TraceEvent
	for _, v := range p.FeasibleNodes(q, p.Queries[q].Demands[0].Dataset) {
		crashAll = append(crashAll, instrument.TraceEvent{Event: instrument.EventCrash, Node: int64(v)})
	}

	for _, tc := range []struct {
		name   string
		events []instrument.TraceEvent
		online bool
		want   string // violation kind, "" = clean
	}{
		{
			name: "retry-exhausted trusted online",
			events: mk(instrument.TraceEvent{Event: instrument.EventReject, Query: int64(q),
				Reason: instrument.ReasonRetryExhausted, Dataset: -1, Node: -1}),
			online: true,
		},
		{
			name: "retry-exhausted flagged offline",
			events: append(mk(instrument.TraceEvent{Event: instrument.EventReject, Query: int64(q),
				Reason: instrument.ReasonRetryExhausted, Dataset: -1, Node: -1}),
				instrument.TraceEvent{Event: instrument.EventEnd, Seq: 99, Run: 1}),
			online: false,
			want:   "reject-reason",
		},
		{
			name: "node-crashed needs crash events",
			events: mk(instrument.TraceEvent{Event: instrument.EventReject, Query: int64(q),
				Reason: instrument.ReasonNodeCrashed, Dataset: dss[0], Node: nodes[0]}),
			online: true,
			want:   "reject-reason",
		},
		{
			name: "node-crashed justified by crashes",
			events: mk(append(append([]instrument.TraceEvent{}, crashAll...),
				instrument.TraceEvent{Event: instrument.EventReject, Query: int64(q),
					Reason: instrument.ReasonNodeCrashed, Dataset: dss[0], Node: nodes[0]})...),
			online: true,
		},
		{
			name:   "repair of unadmitted query",
			events: mk(instrument.TraceEvent{Event: instrument.EventRepair, Query: int64(q), Dataset: dss[0], Node: nodes[0], Reason: instrument.ReasonRepaired}),
			online: true,
			want:   "repair",
		},
		{
			name: "repair onto crashed node",
			events: mk(admit,
				instrument.TraceEvent{Event: instrument.EventCrash, Node: nodes[0]},
				instrument.TraceEvent{Event: instrument.EventRepair, Query: int64(q), Dataset: dss[0], Node: nodes[0], Reason: instrument.ReasonRepaired}),
			online: true,
			want:   "repair",
		},
		{
			name:   "evict closes the books",
			events: mk(admit, instrument.TraceEvent{Event: instrument.EventEvict, Query: int64(q), Reason: instrument.ReasonNodeCrashed, Volume: vol}),
			online: true,
		},
		{
			name:   "evict with forged volume",
			events: mk(admit, instrument.TraceEvent{Event: instrument.EventEvict, Query: int64(q), Reason: instrument.ReasonNodeCrashed, Volume: vol + 5}),
			online: true,
			want:   "objective",
		},
		{
			name:   "evict of unadmitted query",
			events: mk(instrument.TraceEvent{Event: instrument.EventEvict, Query: int64(q), Reason: instrument.ReasonNodeCrashed, Volume: vol}),
			online: true,
			want:   "evict",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vs := CheckTrace(p, tc.events, TraceOptions{Online: tc.online})
			if tc.want == "" {
				if len(vs) != 0 {
					t.Fatalf("expected clean replay, got %v", vs)
				}
				return
			}
			wantKind(t, vs, tc.want)
		})
	}
}
