// Package invariant is the runtime counterpart of the static-analysis pass
// (internal/lint): an independent checker that validates any solution of the
// proactive replication and placement problem against the paper's
// feasibility conditions. It recomputes everything from first principles —
// delays from the cloud's delay primitives, loads by summation, the
// objective by summing dataset sizes over admitted queries — rather than
// reusing placement.Solution's own accessors, so a bug in the solution
// bookkeeping and a bug in an algorithm cannot cancel out.
//
// The checks encode the paper's ILP (§2.4, constraints (1)–(7)):
//
//	objective  recomputed total demanded volume of admitted queries must
//	           match both Solution.Volume and the value the caller reports
//	           (paper (1));
//	capacity   per-node computing load ≤ B(v) (paper (2));
//	replica    every assignment reads from a node holding the dataset's
//	           replica (paper (3));
//	deadline   max over a query's demanded datasets of the evaluation delay
//	           |S_n|·d(v) + |S_n|·α_nm·dt(p_{v,h_m}) ≤ d_qm (paper (4)),
//	           with disconnected (graph.Infinity) transfer delays failing
//	           outright;
//	k-bound    at most K replicas per dataset (paper (5));
//	structure  admissions sorted/unique, replica sets sorted/unique and on
//	           compute nodes, assignments exactly covering the demands of
//	           admitted queries — the determinism contract every algorithm
//	           and golden test relies on.
//
// The Appro-G, baseline, and online test paths call CheckSolution after
// every run; the placement fuzz test feeds it adversarial instances.
package invariant

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"edgerep/internal/graph"
	"edgerep/internal/placement"
	"edgerep/internal/workload"
)

// Tolerances mirror the ones the algorithms themselves use: capacity checks
// allow the accumulation slack of placement.Solution.Validate, deadlines the
// epsilon of Problem.MeetsDeadline.
const (
	capEps      = 1e-6
	deadlineEps = 1e-12
	volumeEps   = 1e-9
)

// Violation is one broken feasibility or determinism contract.
type Violation struct {
	// Kind names the paper constraint or contract: "objective", "capacity",
	// "replica", "deadline", "k-bound", or "structure".
	Kind string
	Msg  string
}

func (v Violation) String() string { return v.Kind + ": " + v.Msg }

// Options tunes which constraints apply.
type Options struct {
	// IgnoreCapacity skips the per-node capacity check (paper (2)). The
	// online engine with finite hold times enforces capacity instant by
	// instant, so the offline sum-over-admissions bound does not apply to
	// its cumulative solution (see online.Engine.Solution).
	IgnoreCapacity bool
	// ReportedVolume, when non-NaN, must match the recomputed objective.
	ReportedVolume float64
}

// Check validates s against p and returns every violation found (nil when
// feasible). It never mutates p or s.
func Check(p *placement.Problem, s *placement.Solution, opt Options) []Violation {
	var out []Violation
	add := func(kind, format string, args ...interface{}) {
		out = append(out, Violation{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}

	// Replica-set structure and the K bound (paper (5)).
	computeSet := make(map[graph.NodeID]bool)
	for _, v := range p.Cloud.ComputeNodes() {
		computeSet[v] = true
	}
	for n, nodes := range s.Replicas {
		if int(n) < 0 || int(n) >= len(p.Datasets) {
			add("structure", "replica set for unknown dataset %d", n)
			continue
		}
		if len(nodes) > p.MaxReplicas {
			add("k-bound", "dataset %d has %d replicas, K = %d", n, len(nodes), p.MaxReplicas)
		}
		for i, v := range nodes {
			if !computeSet[v] {
				add("structure", "dataset %d replica on non-compute node %d", n, v)
			}
			if i > 0 && nodes[i-1] >= v {
				add("structure", "dataset %d replica list not sorted/unique at index %d", n, i)
			}
		}
	}

	// Admission-list structure: ascending, unique, in range.
	admitted := make(map[workload.QueryID]bool, len(s.Admitted))
	indexable := true // false once Admitted holds IDs Solution.Volume would panic on
	for i, q := range s.Admitted {
		if int(q) < 0 || int(q) >= len(p.Queries) {
			add("structure", "admitted unknown query %d", q)
			indexable = false
			continue
		}
		if i > 0 && s.Admitted[i-1] >= q {
			add("structure", "admitted list not sorted/unique at index %d (query %d)", i, q)
		}
		admitted[q] = true
	}

	// Assignments: one per (admitted query, demanded dataset), nothing else.
	perQuery := make(map[workload.QueryID]map[workload.DatasetID]graph.NodeID)
	for _, a := range s.Assignments {
		if int(a.Query) < 0 || int(a.Query) >= len(p.Queries) {
			add("structure", "assignment references unknown query %d", a.Query)
			continue
		}
		if !admitted[a.Query] {
			add("structure", "assignment for non-admitted query %d", a.Query)
			continue
		}
		m := perQuery[a.Query]
		if m == nil {
			m = make(map[workload.DatasetID]graph.NodeID)
			perQuery[a.Query] = m
		}
		if _, dup := m[a.Dataset]; dup {
			add("structure", "query %d assigned dataset %d twice", a.Query, a.Dataset)
			continue
		}
		m[a.Dataset] = a.Node
	}

	load := make(map[graph.NodeID]float64)
	recomputedVolume := 0.0
	for _, q := range s.Admitted {
		if int(q) < 0 || int(q) >= len(p.Queries) {
			continue // reported above
		}
		query := &p.Queries[q]
		m := perQuery[q]
		if len(m) != len(query.Demands) {
			add("structure", "query %d admitted with %d of %d demanded datasets assigned",
				q, len(m), len(query.Demands))
		}
		// The paper admits a query only when the *maximum* over its demanded
		// datasets of the evaluation delay meets the deadline; recompute that
		// maximum from the cloud primitives.
		maxDelay := 0.0
		complete := true
		for _, dm := range query.Demands {
			v, ok := m[dm.Dataset]
			if !ok {
				add("structure", "query %d missing assignment for dataset %d", q, dm.Dataset)
				complete = false
				continue
			}
			if !computeSet[v] {
				add("structure", "query %d dataset %d served from non-compute node %d", q, dm.Dataset, v)
				complete = false
				continue
			}
			// Paper (3): replica present at the serving node.
			if !hasReplica(s, dm.Dataset, v) {
				add("replica", "query %d reads dataset %d from node %d without a replica", q, dm.Dataset, v)
			}
			// Paper (4): evaluation delay, recomputed from first principles.
			size := p.Datasets[dm.Dataset].SizeGB
			delay := size*p.Cloud.ProcDelayPerGB(v) +
				size*dm.Selectivity*p.Cloud.TransferDelayPerGB(v, query.Home)
			if math.IsInf(delay, 1) {
				add("deadline", "query %d dataset %d at node %d is disconnected from home %d (delay = graph.Infinity)",
					q, dm.Dataset, v, query.Home)
			} else if delay > maxDelay {
				maxDelay = delay
			}
			load[v] += size * query.ComputePerGB
			recomputedVolume += size
		}
		if complete && maxDelay > query.DeadlineSec+deadlineEps {
			add("deadline", "query %d max evaluation delay %.6fs exceeds deadline %.6fs",
				q, maxDelay, query.DeadlineSec)
		}
	}

	// Paper (2): per-node computing capacity.
	if !opt.IgnoreCapacity {
		for v, used := range load {
			if capGHz := p.Cloud.Capacity(v); used > capGHz+capEps {
				add("capacity", "node %d loaded %.6f GHz over capacity %.6f", v, used, capGHz)
			}
		}
	}

	// Paper (1): the objective. The recomputed value (sum of dataset sizes
	// over admitted demands) must agree with the solution's own accessor and
	// with whatever the caller reported.
	// Skip the accessor cross-check when Admitted holds unknown IDs:
	// Solution.Volume would panic, and the structure violation already stands.
	if indexable {
		if vol := s.Volume(p); math.Abs(vol-recomputedVolume) > volumeEps {
			add("objective", "Solution.Volume reports %.9f GB but admitted demands sum to %.9f GB",
				vol, recomputedVolume)
		}
	}
	if !math.IsNaN(opt.ReportedVolume) && math.Abs(opt.ReportedVolume-recomputedVolume) > volumeEps {
		add("objective", "reported volume %.9f GB but admitted demands sum to %.9f GB",
			opt.ReportedVolume, recomputedVolume)
	}
	return out
}

// hasReplica checks membership without relying on the solution's sortedness
// (which is itself under test).
func hasReplica(s *placement.Solution, n workload.DatasetID, v graph.NodeID) bool {
	for _, node := range s.Replicas[n] {
		if node == v {
			return true
		}
	}
	return false
}

// CheckSolution validates s against every constraint including the objective
// recomputation and returns an error joining all violations, or nil.
// reportedVolume is the objective value the algorithm or experiment layer
// reported for this solution.
func CheckSolution(p *placement.Problem, s *placement.Solution, reportedVolume float64) error {
	return toError(Check(p, s, Options{ReportedVolume: reportedVolume}))
}

// CheckAdmissions validates everything except the offline capacity bound —
// the applicable contract for online runs with finite hold times, where
// capacity is enforced instant by instant rather than over the cumulative
// admission set.
func CheckAdmissions(p *placement.Problem, s *placement.Solution, reportedVolume float64) error {
	return toError(Check(p, s, Options{IgnoreCapacity: true, ReportedVolume: reportedVolume}))
}

func toError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Kind != vs[j].Kind {
			return vs[i].Kind < vs[j].Kind
		}
		return vs[i].Msg < vs[j].Msg
	})
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	return fmt.Errorf("invariant: %d violation(s):\n\t%s", len(vs), strings.Join(msgs, "\n\t"))
}
