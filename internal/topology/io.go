package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"edgerep/internal/graph"
)

// jsonTopology is the interchange schema shared by edgerepgen (writer) and
// edgerepplace (reader): a self-contained description of the two-tier edge
// cloud that downstream tools can consume without re-running generation.
type jsonTopology struct {
	Nodes []jsonNode `json:"nodes"`
	Links []jsonLink `json:"links"`
}

type jsonNode struct {
	ID          int     `json:"id"`
	Kind        string  `json:"kind"`
	CapacityGHz float64 `json:"capacity_ghz"`
	ProcDelay   float64 `json:"proc_delay_per_gb"`
	Region      string  `json:"region"`
}

type jsonLink struct {
	From  int     `json:"from"`
	To    int     `json:"to"`
	Delay float64 `json:"delay_per_gb"`
}

func kindFromString(s string) (NodeKind, error) {
	switch s {
	case "datacenter":
		return DataCenter, nil
	case "cloudlet":
		return Cloudlet, nil
	case "switch":
		return Switch, nil
	case "basestation":
		return BaseStation, nil
	default:
		return 0, fmt.Errorf("topology: unknown node kind %q", s)
	}
}

// Save writes the topology as indented JSON.
func (t *Topology) Save(w io.Writer) error {
	out := jsonTopology{}
	for _, n := range t.Nodes {
		out.Nodes = append(out.Nodes, jsonNode{
			ID:          int(n.ID),
			Kind:        n.Kind.String(),
			CapacityGHz: n.CapacityGHz,
			ProcDelay:   n.ProcDelayPerGB,
			Region:      n.Region,
		})
	}
	for _, e := range t.Graph.Edges() {
		out.Links = append(out.Links, jsonLink{From: int(e.From), To: int(e.To), Delay: e.Weight})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a topology written by Save (or hand-authored in the same
// schema), rebuilding the graph and the all-pairs delay matrix. Node IDs
// must be dense 0..n-1 in order.
func Load(r io.Reader) (*Topology, error) {
	var in jsonTopology
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	if len(in.Nodes) == 0 {
		return nil, fmt.Errorf("topology: no nodes")
	}
	g := graph.New(len(in.Nodes))
	nodes := make([]Node, len(in.Nodes))
	var compute []graph.NodeID
	for i, jn := range in.Nodes {
		if jn.ID != i {
			return nil, fmt.Errorf("topology: node IDs must be dense and ordered; got %d at position %d", jn.ID, i)
		}
		kind, err := kindFromString(jn.Kind)
		if err != nil {
			return nil, err
		}
		if kind == DataCenter || kind == Cloudlet {
			if jn.CapacityGHz <= 0 {
				return nil, fmt.Errorf("topology: compute node %d has capacity %v", i, jn.CapacityGHz)
			}
			if jn.ProcDelay <= 0 {
				return nil, fmt.Errorf("topology: compute node %d has processing delay %v", i, jn.ProcDelay)
			}
			compute = append(compute, graph.NodeID(i))
		}
		nodes[i] = Node{
			ID:             graph.NodeID(i),
			Kind:           kind,
			CapacityGHz:    jn.CapacityGHz,
			ProcDelayPerGB: jn.ProcDelay,
			Region:         jn.Region,
		}
	}
	if len(compute) == 0 {
		return nil, fmt.Errorf("topology: no compute nodes")
	}
	for _, l := range in.Links {
		if l.From < 0 || l.From >= len(in.Nodes) || l.To < 0 || l.To >= len(in.Nodes) {
			return nil, fmt.Errorf("topology: link %d-%d out of range", l.From, l.To)
		}
		if l.Delay <= 0 {
			return nil, fmt.Errorf("topology: link %d-%d delay %v", l.From, l.To, l.Delay)
		}
		g.AddEdge(graph.NodeID(l.From), graph.NodeID(l.To), l.Delay)
	}
	top := &Topology{
		Graph:        g,
		Nodes:        nodes,
		ComputeNodes: compute,
	}
	return top.finish(), nil
}
