package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.DataCenters != 6 || c.Cloudlets != 24 || c.Switches != 2 {
		t.Fatalf("default mix %d/%d/%d, paper uses 6 DCs, 24 cloudlets, 2 switches",
			c.DataCenters, c.Cloudlets, c.Switches)
	}
	if c.EdgeProb != 0.2 {
		t.Fatalf("edge probability %v, paper uses 0.2", c.EdgeProb)
	}
	if c.DCCapMin != 200 || c.DCCapMax != 700 {
		t.Fatalf("DC capacity range [%v,%v], paper uses [200,700]", c.DCCapMin, c.DCCapMax)
	}
	if c.CLCapMin != 8 || c.CLCapMax != 16 {
		t.Fatalf("cloudlet capacity range [%v,%v], paper uses [8,16]", c.CLCapMin, c.CLCapMax)
	}
}

func TestGenerateDefault(t *testing.T) {
	top := MustGenerate(DefaultConfig())
	if got := top.NumCompute(); got != 30 {
		t.Fatalf("compute nodes = %d, want 30", got)
	}
	if got := top.Graph.NumNodes(); got != 32 {
		t.Fatalf("total nodes = %d, want 32", got)
	}
	if !top.Graph.Connected() {
		t.Fatal("generated topology disconnected")
	}
}

func TestGenerateCapacitiesInRange(t *testing.T) {
	c := DefaultConfig()
	top := MustGenerate(c)
	for _, id := range top.ComputeNodes {
		n := top.Node(id)
		switch n.Kind {
		case DataCenter:
			if n.CapacityGHz < c.DCCapMin || n.CapacityGHz > c.DCCapMax {
				t.Fatalf("DC %d capacity %v outside [%v,%v]", id, n.CapacityGHz, c.DCCapMin, c.DCCapMax)
			}
		case Cloudlet:
			if n.CapacityGHz < c.CLCapMin || n.CapacityGHz > c.CLCapMax {
				t.Fatalf("cloudlet %d capacity %v outside [%v,%v]", id, n.CapacityGHz, c.CLCapMin, c.CLCapMax)
			}
		default:
			t.Fatalf("compute node %d has kind %v", id, n.Kind)
		}
		if n.ProcDelayPerGB <= 0 {
			t.Fatalf("node %d has non-positive processing delay", id)
		}
	}
}

func TestForwardingNodesHaveNoCapacity(t *testing.T) {
	top := MustGenerate(DefaultConfig())
	for _, n := range top.Nodes {
		if (n.Kind == Switch || n.Kind == BaseStation) && n.CapacityGHz != 0 {
			t.Fatalf("%v node %d has capacity %v", n.Kind, n.ID, n.CapacityGHz)
		}
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	a := MustGenerate(DefaultConfig())
	b := MustGenerate(DefaultConfig())
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for i := range a.Nodes {
		if a.Nodes[i].CapacityGHz != b.Nodes[i].CapacityGHz {
			t.Fatalf("same seed, node %d capacities differ", i)
		}
	}
	c := DefaultConfig()
	c.Seed = 999
	d := MustGenerate(c)
	same := a.Graph.NumEdges() == d.Graph.NumEdges()
	for i := range a.Nodes {
		if a.Nodes[i].CapacityGHz != d.Nodes[i].CapacityGHz {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical topology (suspicious)")
	}
}

func TestScaledConfigSizes(t *testing.T) {
	for _, n := range []int{20, 50, 100, 150, 200} {
		c := ScaledConfig(n, 7)
		if got := c.DataCenters + c.Cloudlets; got != n {
			t.Fatalf("ScaledConfig(%d) yields %d compute nodes", n, got)
		}
		top := MustGenerate(c)
		if top.NumCompute() != n {
			t.Fatalf("generated %d compute nodes, want %d", top.NumCompute(), n)
		}
		if !top.Graph.Connected() {
			t.Fatalf("scaled topology n=%d disconnected", n)
		}
	}
}

func TestScaledConfigTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaledConfig(1) did not panic")
		}
	}()
	ScaledConfig(1, 1)
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.DataCenters = 0 },
		func(c *Config) { c.Cloudlets = 0 },
		func(c *Config) { c.Switches = -1 },
		func(c *Config) { c.EdgeProb = -0.1 },
		func(c *Config) { c.EdgeProb = 1.5 },
		func(c *Config) { c.DCCapMin = 0 },
		func(c *Config) { c.DCCapMax = c.DCCapMin - 1 },
		func(c *Config) { c.CLCapMin = -3 },
		func(c *Config) { c.LinkDelayMin = 0 },
		func(c *Config) { c.LinkDelayMax = 0.01 },
		func(c *Config) { c.WANDelayFactor = 0.5 },
		func(c *Config) { c.DCProcDelayPerGB = 0 },
		func(c *Config) { c.CLProcDelayPerGB = -1 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d accepted by Validate", i)
		}
		if _, err := Generate(c); err == nil {
			t.Fatalf("mutation %d accepted by Generate", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestTransferDelayFiniteAndSymmetric(t *testing.T) {
	top := MustGenerate(DefaultConfig())
	for _, u := range top.ComputeNodes {
		for _, v := range top.ComputeNodes {
			d := top.TransferDelayPerGB(u, v)
			if math.IsInf(d, 1) {
				t.Fatalf("infinite delay between compute nodes %d and %d", u, v)
			}
			if back := top.TransferDelayPerGB(v, u); math.Abs(back-d) > 1e-9 {
				t.Fatalf("asymmetric delay %d<->%d: %v vs %v", u, v, d, back)
			}
			if u == v && d != 0 {
				t.Fatalf("self delay %v at node %d", d, u)
			}
		}
	}
}

// Property: any valid seed yields a connected topology with all compute
// capacities inside the configured ranges.
func TestGenerateInvariantsProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := 10 + int(sizeRaw)%120
		c := ScaledConfig(n, seed)
		top, err := Generate(c)
		if err != nil {
			return false
		}
		if !top.Graph.Connected() {
			return false
		}
		for _, id := range top.ComputeNodes {
			node := top.Node(id)
			if node.CapacityGHz <= 0 {
				return false
			}
		}
		return top.NumCompute() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	top := MustGenerate(DefaultConfig())
	s := top.Describe()
	if s == "" {
		t.Fatal("empty description")
	}
	for _, want := range []string{"6 data centers", "24 cloudlets", "2 switches"} {
		if !contains(s, want) {
			t.Fatalf("Describe() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestNodeKindString(t *testing.T) {
	cases := map[NodeKind]string{
		DataCenter:   "datacenter",
		Cloudlet:     "cloudlet",
		Switch:       "switch",
		BaseStation:  "basestation",
		NodeKind(42): "NodeKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("NodeKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestWaxman(t *testing.T) {
	g, pts, err := Waxman(WaxmanConfig{Nodes: 60, Alpha: 0.4, Beta: 0.3, DelayPerUnitDistance: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 60 || len(pts) != 60 {
		t.Fatalf("waxman built %d nodes, %d points", g.NumNodes(), len(pts))
	}
	if !g.Connected() {
		t.Fatal("waxman graph disconnected after repair")
	}
	for _, p := range pts {
		if p[0] < 0 || p[0] > 1 || p[1] < 0 || p[1] > 1 {
			t.Fatalf("point %v outside unit square", p)
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	bad := []WaxmanConfig{
		{Nodes: 1, Alpha: 0.5, Beta: 0.5, DelayPerUnitDistance: 1},
		{Nodes: 10, Alpha: 0, Beta: 0.5, DelayPerUnitDistance: 1},
		{Nodes: 10, Alpha: 1.1, Beta: 0.5, DelayPerUnitDistance: 1},
		{Nodes: 10, Alpha: 0.5, Beta: 0, DelayPerUnitDistance: 1},
		{Nodes: 10, Alpha: 0.5, Beta: 0.5, DelayPerUnitDistance: 0},
	}
	for i, c := range bad {
		if _, _, err := Waxman(c); err == nil {
			t.Fatalf("bad waxman config %d accepted", i)
		}
	}
}

// Property: Waxman with higher alpha is denser on average (checked pairwise
// with identical seeds so the point sets coincide).
func TestWaxmanDensityMonotoneInAlpha(t *testing.T) {
	lo, _, err := Waxman(WaxmanConfig{Nodes: 80, Alpha: 0.1, Beta: 0.4, DelayPerUnitDistance: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := Waxman(WaxmanConfig{Nodes: 80, Alpha: 0.9, Beta: 0.4, DelayPerUnitDistance: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hi.NumEdges() <= lo.NumEdges() {
		t.Fatalf("alpha=0.9 produced %d edges, alpha=0.1 produced %d", hi.NumEdges(), lo.NumEdges())
	}
}

func TestComputeNodesAscendingAndTyped(t *testing.T) {
	top := MustGenerate(DefaultConfig())
	for i := 1; i < len(top.ComputeNodes); i++ {
		if top.ComputeNodes[i] <= top.ComputeNodes[i-1] {
			t.Fatal("ComputeNodes not ascending")
		}
	}
	for _, id := range top.ComputeNodes {
		k := top.Node(id).Kind
		if k != DataCenter && k != Cloudlet {
			t.Fatalf("compute node %d has kind %v", id, k)
		}
	}
}

func TestGenerateNoSwitches(t *testing.T) {
	c := DefaultConfig()
	c.Switches = 0
	top := MustGenerate(c)
	if !top.Graph.Connected() {
		t.Fatal("switchless topology disconnected")
	}
}

func TestGenerateWithBaseStations(t *testing.T) {
	c := DefaultConfig()
	c.BaseStations = 10
	top := MustGenerate(c)
	if got := top.Graph.NumNodes(); got != 42 {
		t.Fatalf("total nodes = %d, want 42", got)
	}
	bs := 0
	for _, n := range top.Nodes {
		if n.Kind == BaseStation {
			bs++
			if top.Graph.Degree(n.ID) == 0 {
				t.Fatalf("base station %d isolated", n.ID)
			}
		}
	}
	if bs != 10 {
		t.Fatalf("found %d base stations, want 10", bs)
	}
}

func BenchmarkGenerate200(b *testing.B) {
	c := ScaledConfig(200, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(c); err != nil {
			b.Fatal(err)
		}
	}
}
