package topology

import (
	"fmt"
	"math/rand"

	"edgerep/internal/graph"
)

// TransitStubConfig parameterizes GT-ITM's signature hierarchical model [8]:
// a small transit backbone of well-connected domains, with stub domains
// hanging off transit nodes. In the two-tier edge cloud reading, transit
// domains are the wide-area backbone hosting the data centers, and stub
// domains are metropolitan clusters of cloudlets — a structurally faithful
// alternative to the flat iid-probability model the paper's experiments use
// (Generate). The topology-model sensitivity ablation compares the two.
type TransitStubConfig struct {
	// TransitDomains and TransitNodesPerDomain shape the backbone.
	TransitDomains        int
	TransitNodesPerDomain int
	// StubsPerTransitNode and StubNodesPerDomain shape the edge.
	StubsPerTransitNode int
	StubNodesPerDomain  int
	// EdgeProbTransit / EdgeProbStub are the intra-domain link
	// probabilities (a spanning path guarantees connectivity regardless).
	EdgeProbTransit float64
	EdgeProbStub    float64
	// Capacity and delay parameters mirror Config.
	DCCapMin, DCCapMax         float64
	CLCapMin, CLCapMax         float64
	LinkDelayMin, LinkDelayMax float64
	WANDelayFactor             float64
	DCProcDelayPerGB           float64
	CLProcDelayPerGB           float64
	Seed                       int64
}

// DefaultTransitStubConfig mirrors the paper's node counts: one backbone of
// 6 transit nodes (the data centers) and 24 cloudlets spread over stub
// domains.
func DefaultTransitStubConfig() TransitStubConfig {
	return TransitStubConfig{
		TransitDomains:        2,
		TransitNodesPerDomain: 3,
		StubsPerTransitNode:   1,
		StubNodesPerDomain:    4,
		EdgeProbTransit:       0.6,
		EdgeProbStub:          0.4,
		DCCapMin:              200,
		DCCapMax:              700,
		CLCapMin:              8,
		CLCapMax:              16,
		LinkDelayMin:          0.20,
		LinkDelayMax:          1.00,
		WANDelayFactor:        4.0,
		DCProcDelayPerGB:      0.4,
		CLProcDelayPerGB:      1.0,
		Seed:                  1,
	}
}

// Validate reports the first configuration error, or nil.
func (c TransitStubConfig) Validate() error {
	switch {
	case c.TransitDomains < 1 || c.TransitNodesPerDomain < 1:
		return fmt.Errorf("topology: transit-stub needs ≥1 transit domain and node")
	case c.StubsPerTransitNode < 0 || c.StubNodesPerDomain < 1:
		return fmt.Errorf("topology: bad stub shape %d×%d", c.StubsPerTransitNode, c.StubNodesPerDomain)
	case c.EdgeProbTransit < 0 || c.EdgeProbTransit > 1 || c.EdgeProbStub < 0 || c.EdgeProbStub > 1:
		return fmt.Errorf("topology: edge probabilities outside [0,1]")
	case c.DCCapMin <= 0 || c.DCCapMax < c.DCCapMin:
		return fmt.Errorf("topology: bad DC capacity range")
	case c.CLCapMin <= 0 || c.CLCapMax < c.CLCapMin:
		return fmt.Errorf("topology: bad cloudlet capacity range")
	case c.LinkDelayMin <= 0 || c.LinkDelayMax < c.LinkDelayMin:
		return fmt.Errorf("topology: bad link delay range")
	case c.WANDelayFactor < 1:
		return fmt.Errorf("topology: WAN factor %v < 1", c.WANDelayFactor)
	case c.DCProcDelayPerGB <= 0 || c.CLProcDelayPerGB <= 0:
		return fmt.Errorf("topology: non-positive processing delay")
	}
	return nil
}

// GenerateTransitStub builds a hierarchical two-tier edge cloud. Transit
// nodes become data centers; stub nodes become cloudlets. Intra-domain links
// are drawn with the configured probabilities on top of a spanning path per
// domain; transit domains interconnect pairwise; each stub domain attaches
// to its transit node through one WAN gateway link.
func GenerateTransitStub(c TransitStubConfig) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	linkDelay := func() float64 { return uniform(c.LinkDelayMin, c.LinkDelayMax) }
	wanDelay := func() float64 { return linkDelay() * c.WANDelayFactor }

	numTransit := c.TransitDomains * c.TransitNodesPerDomain
	numStubDomains := numTransit * c.StubsPerTransitNode
	numStub := numStubDomains * c.StubNodesPerDomain
	total := numTransit + numStub

	g := graph.New(total)
	nodes := make([]Node, total)
	compute := make([]graph.NodeID, 0, total)

	for i := 0; i < numTransit; i++ {
		nodes[i] = Node{
			ID:             graph.NodeID(i),
			Kind:           DataCenter,
			CapacityGHz:    uniform(c.DCCapMin, c.DCCapMax),
			ProcDelayPerGB: c.DCProcDelayPerGB,
			Region:         regions[(i/c.TransitNodesPerDomain)%len(regions)],
		}
		compute = append(compute, graph.NodeID(i))
	}
	for i := numTransit; i < total; i++ {
		nodes[i] = Node{
			ID:             graph.NodeID(i),
			Kind:           Cloudlet,
			CapacityGHz:    uniform(c.CLCapMin, c.CLCapMax),
			ProcDelayPerGB: c.CLProcDelayPerGB,
			Region:         "metro",
		}
		compute = append(compute, graph.NodeID(i))
	}

	// Intra-transit-domain: spanning path + random WAN links.
	for d := 0; d < c.TransitDomains; d++ {
		base := d * c.TransitNodesPerDomain
		for i := 0; i < c.TransitNodesPerDomain; i++ {
			for j := i + 1; j < c.TransitNodesPerDomain; j++ {
				u, v := graph.NodeID(base+i), graph.NodeID(base+j)
				if j == i+1 || rng.Float64() < c.EdgeProbTransit {
					g.AddEdge(u, v, wanDelay())
				}
			}
		}
	}
	// Inter-transit-domain: one WAN link between consecutive domains plus
	// random extras, so the backbone is connected.
	for d := 1; d < c.TransitDomains; d++ {
		u := graph.NodeID((d-1)*c.TransitNodesPerDomain + rng.Intn(c.TransitNodesPerDomain))
		v := graph.NodeID(d*c.TransitNodesPerDomain + rng.Intn(c.TransitNodesPerDomain))
		g.AddEdge(u, v, wanDelay())
	}

	// Stub domains: spanning path + random metro links; gateway to the
	// owning transit node.
	stub := numTransit
	for tn := 0; tn < numTransit; tn++ {
		for s := 0; s < c.StubsPerTransitNode; s++ {
			base := stub
			for i := 0; i < c.StubNodesPerDomain; i++ {
				for j := i + 1; j < c.StubNodesPerDomain; j++ {
					u, v := graph.NodeID(base+i), graph.NodeID(base+j)
					if j == i+1 || rng.Float64() < c.EdgeProbStub {
						g.AddEdge(u, v, linkDelay())
					}
				}
			}
			gw := graph.NodeID(base + rng.Intn(c.StubNodesPerDomain))
			g.AddEdge(gw, graph.NodeID(tn), wanDelay())
			stub += c.StubNodesPerDomain
		}
	}

	g.Connect(c.LinkDelayMax * c.WANDelayFactor)

	top := &Topology{
		Graph:        g,
		Nodes:        nodes,
		ComputeNodes: compute,
	}
	return top.finish(), nil
}
