package topology

import (
	"fmt"
	"math"
	"math/rand"

	"edgerep/internal/graph"
)

// WaxmanConfig parameterizes the classic Waxman random-graph model that
// GT-ITM implements for flat topologies: nodes are scattered uniformly on a
// unit square and each pair (u,v) is linked with probability
// α·exp(−d(u,v)/(β·L)), where L is the maximum possible distance.
// The paper cites GT-ITM [8] for topology generation; the iid-probability
// model used in its experiments is the special case β→∞, α=p. The Waxman
// generator is provided for locality-sensitive ablations.
type WaxmanConfig struct {
	Nodes int
	Alpha float64
	Beta  float64
	// DelayPerUnitDistance converts the planar distance of a created link
	// into its per-GB transmission delay.
	DelayPerUnitDistance float64
	Seed                 int64
}

// Validate reports the first configuration error, or nil.
func (c WaxmanConfig) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("topology: waxman needs ≥2 nodes, got %d", c.Nodes)
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("topology: waxman alpha %v outside (0,1]", c.Alpha)
	case c.Beta <= 0:
		return fmt.Errorf("topology: waxman beta %v must be positive", c.Beta)
	case c.DelayPerUnitDistance <= 0:
		return fmt.Errorf("topology: waxman delay scale %v must be positive", c.DelayPerUnitDistance)
	}
	return nil
}

// Waxman generates a connected Waxman random graph plus the node coordinates
// it was built from.
func Waxman(c WaxmanConfig) (*graph.Graph, [][2]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	pts := make([][2]float64, c.Nodes)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	g := graph.New(c.Nodes)
	maxDist := math.Sqrt2 // diagonal of the unit square
	for u := 0; u < c.Nodes; u++ {
		for v := u + 1; v < c.Nodes; v++ {
			d := planarDist(pts[u], pts[v])
			p := c.Alpha * math.Exp(-d/(c.Beta*maxDist))
			if rng.Float64() < p {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), d*c.DelayPerUnitDistance)
			}
		}
	}
	g.Connect(maxDist * c.DelayPerUnitDistance)
	return g, pts, nil
}

func planarDist(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return math.Sqrt(dx*dx + dy*dy)
}
