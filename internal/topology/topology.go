// Package topology generates two-tier edge-cloud topologies following the
// experimental setup of the paper (§4.1): data centers, cloudlets co-located
// with WMAN switches, gateway switches, and base stations, inter-connected by
// links generated with a GT-ITM-style model (each node pair is linked
// independently with probability 0.2). Random topologies may come out
// disconnected; they are repaired with spanning edges so that every query's
// home node can reach every replica node, which the paper implicitly assumes.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"edgerep/internal/graph"
)

// NodeKind distinguishes the roles in the two-tier edge cloud.
type NodeKind int

const (
	// DataCenter is a remote data center (top tier).
	DataCenter NodeKind = iota
	// Cloudlet is an edge cloudlet co-located with a switch (bottom tier).
	Cloudlet
	// Switch is a WMAN switch / gateway without compute capacity.
	Switch
	// BaseStation is a user attachment point without compute capacity.
	BaseStation
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case DataCenter:
		return "datacenter"
	case Cloudlet:
		return "cloudlet"
	case Switch:
		return "switch"
	case BaseStation:
		return "basestation"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one vertex of the edge cloud with its physical attributes.
type Node struct {
	ID   graph.NodeID
	Kind NodeKind
	// CapacityGHz is the computing capacity B(v); zero for switches and
	// base stations, which only forward traffic.
	CapacityGHz float64
	// ProcDelayPerGB is d(v): seconds to process one GB of data per unit
	// of allocated computing resource. Data centers are faster than
	// cloudlets per unit because of better hardware.
	ProcDelayPerGB float64
	// Region is a coarse geographic label used by the testbed emulation.
	Region string
}

// Topology is a fully-built two-tier edge cloud.
type Topology struct {
	Graph *graph.Graph
	Nodes []Node
	// ComputeNodes lists the IDs of V = CL ∪ DC in ascending order.
	ComputeNodes []graph.NodeID
	// Delays holds all-pairs shortest-path transmission delays per GB.
	Delays *graph.DistanceMatrix

	// cache memoizes per-source Dijkstra trees over Graph; it backs Delays
	// and is shared with routing so path reconstruction reuses the trees
	// the delay matrix was built from. Lazily created by DistanceCache.
	cacheOnce sync.Once
	cache     *graph.DistanceCache
}

// DistanceCache returns the topology's shared shortest-path cache, creating
// it on first use. All distance consumers (the Delays matrix, routing,
// experiments) should resolve paths through this cache instead of running
// their own Dijkstra, so each source is computed at most once per topology.
// Safe for concurrent use.
func (t *Topology) DistanceCache() *graph.DistanceCache {
	t.cacheOnce.Do(func() {
		t.cache = graph.NewDistanceCache(t.Graph)
	})
	return t.cache
}

// finish populates the derived fields of a freshly-constructed topology:
// the shared distance cache and the all-pairs delay matrix built from it.
func (t *Topology) finish() *Topology {
	t.Delays = t.DistanceCache().Matrix()
	return t
}

// Config controls topology generation. Defaults mirror the paper: 6 data
// centers, 24 cloudlets, 2 gateway switches, link probability 0.2,
// data-center capacities in [200,700] GHz, cloudlet capacities in [8,16] GHz.
type Config struct {
	DataCenters  int
	Cloudlets    int
	Switches     int
	BaseStations int
	// EdgeProb is the GT-ITM iid link probability between node pairs.
	EdgeProb float64
	// DCCapMin/Max bound data-center computing capacity in GHz.
	DCCapMin, DCCapMax float64
	// CLCapMin/Max bound cloudlet computing capacity in GHz.
	CLCapMin, CLCapMax float64
	// LinkDelayMin/Max bound per-GB transmission delay of a WMAN link in
	// seconds.
	LinkDelayMin, LinkDelayMax float64
	// WANDelayFactor scales delays of links that cross the Internet to a
	// data center; WAN hops are slower than metropolitan ones.
	WANDelayFactor float64
	// DCProcDelayPerGB / CLProcDelayPerGB are the per-GB per-unit-resource
	// processing delays d(v).
	DCProcDelayPerGB float64
	CLProcDelayPerGB float64
	// Seed drives all randomness; the same seed yields the same topology.
	Seed int64
}

// DefaultConfig returns the paper's simulation settings (§4.1).
func DefaultConfig() Config {
	return Config{
		DataCenters:      6,
		Cloudlets:        24,
		Switches:         2,
		BaseStations:     0,
		EdgeProb:         0.2,
		DCCapMin:         200,
		DCCapMax:         700,
		CLCapMin:         8,
		CLCapMax:         16,
		LinkDelayMin:     0.20,
		LinkDelayMax:     1.00,
		WANDelayFactor:   4.0,
		DCProcDelayPerGB: 0.4,
		CLProcDelayPerGB: 1.0,
		Seed:             1,
	}
}

// ScaledConfig returns a configuration whose total compute-node count
// (|V| = |DC| + |CL|) equals n, preserving the paper's 6:24 DC:cloudlet mix.
// The paper's network-size sweeps (Figs 2 and 3) vary |V| from tens to 200.
func ScaledConfig(n int, seed int64) Config {
	if n < 2 {
		panic(fmt.Sprintf("topology: network size %d too small", n))
	}
	c := DefaultConfig()
	dcs := n / 5 // 6 of 30 compute nodes in the default mix
	if dcs < 1 {
		dcs = 1
	}
	c.DataCenters = dcs
	c.Cloudlets = n - dcs
	c.Switches = max(2, n/15)
	c.Seed = seed
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.DataCenters < 1:
		return fmt.Errorf("topology: need at least one data center, got %d", c.DataCenters)
	case c.Cloudlets < 1:
		return fmt.Errorf("topology: need at least one cloudlet, got %d", c.Cloudlets)
	case c.Switches < 0 || c.BaseStations < 0:
		return fmt.Errorf("topology: negative switch/base-station count")
	case c.EdgeProb < 0 || c.EdgeProb > 1 || math.IsNaN(c.EdgeProb):
		return fmt.Errorf("topology: edge probability %v outside [0,1]", c.EdgeProb)
	case c.DCCapMin <= 0 || c.DCCapMax < c.DCCapMin:
		return fmt.Errorf("topology: bad DC capacity range [%v,%v]", c.DCCapMin, c.DCCapMax)
	case c.CLCapMin <= 0 || c.CLCapMax < c.CLCapMin:
		return fmt.Errorf("topology: bad cloudlet capacity range [%v,%v]", c.CLCapMin, c.CLCapMax)
	case c.LinkDelayMin <= 0 || c.LinkDelayMax < c.LinkDelayMin:
		return fmt.Errorf("topology: bad link delay range [%v,%v]", c.LinkDelayMin, c.LinkDelayMax)
	case c.WANDelayFactor < 1:
		return fmt.Errorf("topology: WAN delay factor %v < 1", c.WANDelayFactor)
	case c.DCProcDelayPerGB <= 0 || c.CLProcDelayPerGB <= 0:
		return fmt.Errorf("topology: non-positive processing delay")
	}
	return nil
}

// regions used to label nodes for the testbed emulation; the paper's testbed
// spans San Francisco, New York, Toronto, and Singapore (§4.3).
var regions = []string{"san-francisco", "new-york", "toronto", "singapore"}

// Generate builds a two-tier edge cloud from the configuration. The layout:
// IDs [0,DC) are data centers, [DC,DC+CL) cloudlets, then switches, then
// base stations. Cloudlets and switches form the WMAN; data centers attach to
// gateway switches (or directly to cloudlets when there are no switches)
// through WAN links. On top of the structural spine, every node pair is
// additionally linked with probability EdgeProb, the paper's GT-ITM setting.
func Generate(c Config) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	total := c.DataCenters + c.Cloudlets + c.Switches + c.BaseStations
	g := graph.New(total)
	nodes := make([]Node, total)
	var compute []graph.NodeID

	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	linkDelay := func() float64 { return uniform(c.LinkDelayMin, c.LinkDelayMax) }
	wanDelay := func() float64 { return linkDelay() * c.WANDelayFactor }

	id := 0
	for i := 0; i < c.DataCenters; i++ {
		nodes[id] = Node{
			ID:             graph.NodeID(id),
			Kind:           DataCenter,
			CapacityGHz:    uniform(c.DCCapMin, c.DCCapMax),
			ProcDelayPerGB: c.DCProcDelayPerGB,
			Region:         regions[i%len(regions)],
		}
		compute = append(compute, graph.NodeID(id))
		id++
	}
	for i := 0; i < c.Cloudlets; i++ {
		nodes[id] = Node{
			ID:             graph.NodeID(id),
			Kind:           Cloudlet,
			CapacityGHz:    uniform(c.CLCapMin, c.CLCapMax),
			ProcDelayPerGB: c.CLProcDelayPerGB,
			Region:         "metro",
		}
		compute = append(compute, graph.NodeID(id))
		id++
	}
	switchStart := id
	for i := 0; i < c.Switches; i++ {
		nodes[id] = Node{ID: graph.NodeID(id), Kind: Switch, Region: "metro"}
		id++
	}
	for i := 0; i < c.BaseStations; i++ {
		nodes[id] = Node{ID: graph.NodeID(id), Kind: BaseStation, Region: "metro"}
		id++
	}

	// Structural spine. Cloudlets chain through the metro network and
	// attach to switches; data centers reach the WMAN via gateway switches
	// over WAN links; base stations attach to random cloudlets.
	clStart := c.DataCenters
	for i := 1; i < c.Cloudlets; i++ {
		g.AddEdge(graph.NodeID(clStart+i-1), graph.NodeID(clStart+i), linkDelay())
	}
	for i := 0; i < c.Switches; i++ {
		cl := clStart + rng.Intn(c.Cloudlets)
		g.AddEdge(graph.NodeID(switchStart+i), graph.NodeID(cl), linkDelay())
	}
	for i := 0; i < c.DataCenters; i++ {
		var gw graph.NodeID
		if c.Switches > 0 {
			gw = graph.NodeID(switchStart + rng.Intn(c.Switches))
		} else {
			gw = graph.NodeID(clStart + rng.Intn(c.Cloudlets))
		}
		g.AddEdge(graph.NodeID(i), gw, wanDelay())
	}
	bsStart := switchStart + c.Switches
	for i := 0; i < c.BaseStations; i++ {
		cl := clStart + rng.Intn(c.Cloudlets)
		g.AddEdge(graph.NodeID(bsStart+i), graph.NodeID(cl), linkDelay())
	}

	// GT-ITM random links with iid probability EdgeProb (paper §4.1).
	for u := 0; u < total; u++ {
		for v := u + 1; v < total; v++ {
			if g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				continue
			}
			if rng.Float64() < c.EdgeProb {
				d := linkDelay()
				if nodes[u].Kind == DataCenter || nodes[v].Kind == DataCenter {
					d *= c.WANDelayFactor
				}
				g.AddEdge(graph.NodeID(u), graph.NodeID(v), d)
			}
		}
	}

	g.Connect(c.LinkDelayMax * c.WANDelayFactor)

	top := &Topology{
		Graph:        g,
		Nodes:        nodes,
		ComputeNodes: compute,
	}
	return top.finish(), nil
}

// MustGenerate is Generate panicking on configuration errors; for tests and
// examples with known-good configs.
func MustGenerate(c Config) *Topology {
	t, err := Generate(c)
	if err != nil {
		panic(err)
	}
	return t
}

// Node returns the node record for id.
func (t *Topology) Node(id graph.NodeID) Node { return t.Nodes[id] }

// NumCompute returns |V| = |CL ∪ DC|.
func (t *Topology) NumCompute() int { return len(t.ComputeNodes) }

// TransferDelayPerGB returns dt(p_{u,v}): the per-GB shortest-path
// transmission delay between two nodes.
func (t *Topology) TransferDelayPerGB(u, v graph.NodeID) float64 {
	return t.Delays.Between(u, v)
}

// Describe returns a human-readable inventory resembling the paper's Fig. 1.
func (t *Topology) Describe() string {
	counts := map[NodeKind]int{}
	for _, n := range t.Nodes {
		counts[n.Kind]++
	}
	return fmt.Sprintf(
		"two-tier edge cloud: %d data centers, %d cloudlets, %d switches, %d base stations, %d links",
		counts[DataCenter], counts[Cloudlet], counts[Switch], counts[BaseStation], t.Graph.NumEdges())
}
