package topology

import (
	"testing"
	"testing/quick"
)

func TestTransitStubDefault(t *testing.T) {
	top, err := GenerateTransitStub(DefaultTransitStubConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 domains × 3 transit + 6 transit × 1 stub × 4 = 6 DCs + 24 cloudlets.
	if top.NumCompute() != 30 {
		t.Fatalf("compute nodes = %d, want 30", top.NumCompute())
	}
	dcs, cls := 0, 0
	for _, n := range top.Nodes {
		switch n.Kind {
		case DataCenter:
			dcs++
		case Cloudlet:
			cls++
		}
	}
	if dcs != 6 || cls != 24 {
		t.Fatalf("mix %d DCs / %d cloudlets, want 6/24 (paper counts)", dcs, cls)
	}
	if !top.Graph.Connected() {
		t.Fatal("transit-stub topology disconnected")
	}
}

func TestTransitStubHierarchyLocality(t *testing.T) {
	// Cloudlets inside the same stub domain must be closer to each other
	// (on average) than to cloudlets of a different transit node's stub —
	// the structural property that distinguishes transit-stub from the
	// flat model.
	c := DefaultTransitStubConfig()
	top, err := GenerateTransitStub(c)
	if err != nil {
		t.Fatal(err)
	}
	numTransit := c.TransitDomains * c.TransitNodesPerDomain
	sameSum, sameN := 0.0, 0
	crossSum, crossN := 0.0, 0
	stubOf := func(id int) int { return (id - numTransit) / c.StubNodesPerDomain }
	for i := numTransit; i < top.Graph.NumNodes(); i++ {
		for j := i + 1; j < top.Graph.NumNodes(); j++ {
			d := top.TransferDelayPerGB(top.Nodes[i].ID, top.Nodes[j].ID)
			if stubOf(i) == stubOf(j) {
				sameSum += d
				sameN++
			} else {
				crossSum += d
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Skip("degenerate stub layout")
	}
	if sameSum/float64(sameN) >= crossSum/float64(crossN) {
		t.Fatalf("no locality: intra-stub mean %.3f ≥ cross-stub mean %.3f",
			sameSum/float64(sameN), crossSum/float64(crossN))
	}
}

func TestTransitStubValidation(t *testing.T) {
	mut := []func(*TransitStubConfig){
		func(c *TransitStubConfig) { c.TransitDomains = 0 },
		func(c *TransitStubConfig) { c.TransitNodesPerDomain = 0 },
		func(c *TransitStubConfig) { c.StubNodesPerDomain = 0 },
		func(c *TransitStubConfig) { c.StubsPerTransitNode = -1 },
		func(c *TransitStubConfig) { c.EdgeProbTransit = 1.5 },
		func(c *TransitStubConfig) { c.EdgeProbStub = -0.1 },
		func(c *TransitStubConfig) { c.DCCapMin = 0 },
		func(c *TransitStubConfig) { c.CLCapMax = c.CLCapMin - 1 },
		func(c *TransitStubConfig) { c.LinkDelayMin = 0 },
		func(c *TransitStubConfig) { c.WANDelayFactor = 0.9 },
		func(c *TransitStubConfig) { c.DCProcDelayPerGB = 0 },
	}
	for i, m := range mut {
		c := DefaultTransitStubConfig()
		m(&c)
		if _, err := GenerateTransitStub(c); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	a, err := GenerateTransitStub(DefaultTransitStubConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTransitStub(DefaultTransitStubConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a.Nodes {
		if a.Nodes[i].CapacityGHz != b.Nodes[i].CapacityGHz {
			t.Fatal("same seed, different capacities")
		}
	}
}

// Property: any valid shape is connected with the right node counts.
func TestTransitStubInvariantsProperty(t *testing.T) {
	f := func(seed int64, td, tn, sp, sn uint8) bool {
		c := DefaultTransitStubConfig()
		c.Seed = seed
		c.TransitDomains = 1 + int(td)%3
		c.TransitNodesPerDomain = 1 + int(tn)%4
		c.StubsPerTransitNode = int(sp) % 3
		c.StubNodesPerDomain = 1 + int(sn)%5
		top, err := GenerateTransitStub(c)
		if err != nil {
			return false
		}
		wantTransit := c.TransitDomains * c.TransitNodesPerDomain
		wantStub := wantTransit * c.StubsPerTransitNode * c.StubNodesPerDomain
		return top.Graph.Connected() && top.NumCompute() == wantTransit+wantStub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
