package topology

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTopologySaveLoadRoundTrip(t *testing.T) {
	top := MustGenerate(DefaultConfig())
	var buf bytes.Buffer
	if err := top.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumNodes() != top.Graph.NumNodes() || got.Graph.NumEdges() != top.Graph.NumEdges() {
		t.Fatalf("shape changed: %d/%d nodes, %d/%d edges",
			got.Graph.NumNodes(), top.Graph.NumNodes(), got.Graph.NumEdges(), top.Graph.NumEdges())
	}
	if got.NumCompute() != top.NumCompute() {
		t.Fatalf("compute count changed: %d vs %d", got.NumCompute(), top.NumCompute())
	}
	for i := range top.Nodes {
		a, b := top.Nodes[i], got.Nodes[i]
		if a.Kind != b.Kind || a.CapacityGHz != b.CapacityGHz ||
			a.ProcDelayPerGB != b.ProcDelayPerGB || a.Region != b.Region {
			t.Fatalf("node %d changed: %+v vs %+v", i, a, b)
		}
	}
	// Delay matrix must be rebuilt identically.
	for _, u := range top.ComputeNodes {
		for _, v := range top.ComputeNodes {
			if math.Abs(got.TransferDelayPerGB(u, v)-top.TransferDelayPerGB(u, v)) > 1e-9 {
				t.Fatalf("delay %d→%d changed", u, v)
			}
		}
	}
}

func TestTopologyLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":     "{",
		"empty":       `{"nodes":[],"links":[]}`,
		"bad-kind":    `{"nodes":[{"id":0,"kind":"quantum","capacity_ghz":1,"proc_delay_per_gb":1}]}`,
		"sparse-ids":  `{"nodes":[{"id":5,"kind":"cloudlet","capacity_ghz":1,"proc_delay_per_gb":1}]}`,
		"no-capacity": `{"nodes":[{"id":0,"kind":"cloudlet","capacity_ghz":0,"proc_delay_per_gb":1}]}`,
		"no-proc":     `{"nodes":[{"id":0,"kind":"cloudlet","capacity_ghz":1,"proc_delay_per_gb":0}]}`,
		"no-compute":  `{"nodes":[{"id":0,"kind":"switch"}]}`,
		"bad-link": `{"nodes":[{"id":0,"kind":"cloudlet","capacity_ghz":1,"proc_delay_per_gb":1},
			{"id":1,"kind":"cloudlet","capacity_ghz":1,"proc_delay_per_gb":1}],
			"links":[{"from":0,"to":9,"delay_per_gb":1}]}`,
		"bad-delay": `{"nodes":[{"id":0,"kind":"cloudlet","capacity_ghz":1,"proc_delay_per_gb":1},
			{"id":1,"kind":"cloudlet","capacity_ghz":1,"proc_delay_per_gb":1}],
			"links":[{"from":0,"to":1,"delay_per_gb":0}]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTopologyLoadMinimalHandAuthored(t *testing.T) {
	in := `{
	  "nodes": [
	    {"id":0,"kind":"datacenter","capacity_ghz":100,"proc_delay_per_gb":0.4,"region":"dc"},
	    {"id":1,"kind":"cloudlet","capacity_ghz":10,"proc_delay_per_gb":1.0,"region":"metro"}
	  ],
	  "links": [{"from":0,"to":1,"delay_per_gb":0.5}]
	}`
	top, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if top.NumCompute() != 2 {
		t.Fatalf("compute = %d", top.NumCompute())
	}
	if d := top.TransferDelayPerGB(0, 1); d != 0.5 {
		t.Fatalf("delay = %v, want 0.5", d)
	}
}
