package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"edgerep/internal/graph"
	"edgerep/internal/topology"
)

func newCloud(t testing.TB) *EdgeCloud {
	t.Helper()
	return New(topology.MustGenerate(topology.DefaultConfig()))
}

func TestNewFullAvailability(t *testing.T) {
	ec := newCloud(t)
	for _, v := range ec.ComputeNodes() {
		if ec.Available(v) != ec.Capacity(v) {
			t.Fatalf("node %d starts at %v of %v", v, ec.Available(v), ec.Capacity(v))
		}
		if ec.Used(v) != 0 {
			t.Fatalf("node %d starts used", v)
		}
		if ec.Utilization(v) != 0 {
			t.Fatalf("node %d starts utilized", v)
		}
	}
	if math.Abs(ec.TotalAvailable()-ec.TotalCapacity()) > 1e-9 {
		t.Fatal("total available != total capacity at start")
	}
}

func TestAllocateReleaseRoundTrip(t *testing.T) {
	ec := newCloud(t)
	v := ec.ComputeNodes()[0]
	cap := ec.Capacity(v)
	if err := ec.Allocate(v, cap/2); err != nil {
		t.Fatal(err)
	}
	if got := ec.Available(v); math.Abs(got-cap/2) > 1e-9 {
		t.Fatalf("available after half alloc = %v, want %v", got, cap/2)
	}
	if got := ec.Utilization(v); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if err := ec.Release(v, cap/2); err != nil {
		t.Fatal(err)
	}
	if got := ec.Available(v); math.Abs(got-cap) > 1e-9 {
		t.Fatalf("available after release = %v, want %v", got, cap)
	}
}

func TestAllocateOverCapacityFails(t *testing.T) {
	ec := newCloud(t)
	v := ec.ComputeNodes()[0]
	if err := ec.Allocate(v, ec.Capacity(v)+1); err == nil {
		t.Fatal("over-capacity allocation accepted")
	}
	// State unchanged on error.
	if ec.Available(v) != ec.Capacity(v) {
		t.Fatal("failed allocation mutated state")
	}
}

func TestAllocateNegativeFails(t *testing.T) {
	ec := newCloud(t)
	v := ec.ComputeNodes()[0]
	if err := ec.Allocate(v, -1); err == nil {
		t.Fatal("negative allocation accepted")
	}
	if err := ec.Release(v, -1); err == nil {
		t.Fatal("negative release accepted")
	}
}

func TestReleaseClampsAtCapacity(t *testing.T) {
	ec := newCloud(t)
	v := ec.ComputeNodes()[0]
	if err := ec.Release(v, 1000); err != nil {
		t.Fatal(err)
	}
	if ec.Available(v) != ec.Capacity(v) {
		t.Fatalf("release overshot capacity: %v > %v", ec.Available(v), ec.Capacity(v))
	}
}

func TestCanAllocate(t *testing.T) {
	ec := newCloud(t)
	v := ec.ComputeNodes()[0]
	if !ec.CanAllocate(v, ec.Capacity(v)) {
		t.Fatal("cannot allocate full capacity on fresh node")
	}
	if ec.CanAllocate(v, ec.Capacity(v)+0.1) {
		t.Fatal("CanAllocate accepts over-capacity")
	}
	if err := ec.Allocate(v, ec.Capacity(v)); err != nil {
		t.Fatal(err)
	}
	if ec.CanAllocate(v, 0.1) {
		t.Fatal("CanAllocate accepts on exhausted node")
	}
}

func TestNonComputeNodePanics(t *testing.T) {
	top := topology.MustGenerate(topology.DefaultConfig())
	ec := New(top)
	// Node 30 is the first switch in the default layout.
	var sw graph.NodeID = -1
	for _, n := range top.Nodes {
		if n.Kind == topology.Switch {
			sw = n.ID
			break
		}
	}
	if sw == -1 {
		t.Fatal("no switch in default topology")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Available(switch) did not panic")
		}
	}()
	ec.Available(sw)
}

func TestSnapshotRestore(t *testing.T) {
	ec := newCloud(t)
	v := ec.ComputeNodes()[0]
	snap := ec.Snapshot()
	if err := ec.Allocate(v, 1); err != nil {
		t.Fatal(err)
	}
	w := ec.ComputeNodes()[1]
	if err := ec.Allocate(w, 2); err != nil {
		t.Fatal(err)
	}
	ec.RestoreSnapshot(snap)
	if ec.Available(v) != ec.Capacity(v) || ec.Available(w) != ec.Capacity(w) {
		t.Fatal("RestoreSnapshot did not roll back")
	}
}

func TestSnapshotIsolatedFromLaterMutation(t *testing.T) {
	ec := newCloud(t)
	v := ec.ComputeNodes()[0]
	snap := ec.Snapshot()
	before := snap[v]
	if err := ec.Allocate(v, 1); err != nil {
		t.Fatal(err)
	}
	if snap[v] != before {
		t.Fatal("snapshot aliases live state")
	}
}

func TestReset(t *testing.T) {
	ec := newCloud(t)
	for _, v := range ec.ComputeNodes() {
		if err := ec.Allocate(v, ec.Available(v)/2); err != nil {
			t.Fatal(err)
		}
	}
	ec.Reset()
	if math.Abs(ec.TotalAvailable()-ec.TotalCapacity()) > 1e-9 {
		t.Fatal("Reset did not restore full availability")
	}
}

// Property: any sequence of successful allocations keeps 0 ≤ A(v) ≤ B(v) and
// conserves TotalCapacity = TotalAvailable + Σ allocations.
func TestAllocationConservationProperty(t *testing.T) {
	top := topology.MustGenerate(topology.DefaultConfig())
	f := func(amounts []float64) bool {
		ec := New(top)
		nodes := ec.ComputeNodes()
		allocated := 0.0
		for i, raw := range amounts {
			v := nodes[i%len(nodes)]
			amt := math.Abs(raw)
			if math.IsNaN(amt) || math.IsInf(amt, 0) {
				continue
			}
			amt = math.Mod(amt, ec.Capacity(v))
			if ec.CanAllocate(v, amt) {
				if err := ec.Allocate(v, amt); err != nil {
					return false
				}
				allocated += amt
			}
			if ec.Available(v) < -1e-9 || ec.Available(v) > ec.Capacity(v)+1e-9 {
				return false
			}
		}
		return math.Abs(ec.TotalCapacity()-(ec.TotalAvailable()+allocated)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDelaysExposed(t *testing.T) {
	ec := newCloud(t)
	nodes := ec.ComputeNodes()
	if d := ec.ProcDelayPerGB(nodes[0]); d <= 0 {
		t.Fatalf("processing delay %v", d)
	}
	if d := ec.TransferDelayPerGB(nodes[0], nodes[1]); d <= 0 || math.IsInf(d, 1) {
		t.Fatalf("transfer delay %v", d)
	}
	if d := ec.TransferDelayPerGB(nodes[0], nodes[0]); d != 0 {
		t.Fatalf("self transfer delay %v", d)
	}
}

func BenchmarkAllocateRelease(b *testing.B) {
	ec := New(topology.MustGenerate(topology.DefaultConfig()))
	v := ec.ComputeNodes()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ec.Allocate(v, 0.5); err != nil {
			b.Fatal(err)
		}
		if err := ec.Release(v, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
