// Package cluster tracks the runtime resource state of a two-tier edge
// cloud: available computing resource A(v) per node, per-unit processing
// delays d(v), and the per-GB transmission delay matrix dt(p_{u,v}).
// Placement algorithms allocate from this ledger; the simulator and
// validators read it back.
package cluster

import (
	"fmt"

	"edgerep/internal/graph"
	"edgerep/internal/topology"
)

// EdgeCloud is the mutable resource state over an immutable topology.
type EdgeCloud struct {
	top *topology.Topology
	// available[i] is A(v) for compute node ComputeNodes[i].
	available map[graph.NodeID]float64
}

// New builds an EdgeCloud with every node's available resource equal to its
// capacity B(v).
func New(top *topology.Topology) *EdgeCloud {
	ec := &EdgeCloud{
		top:       top,
		available: make(map[graph.NodeID]float64, top.NumCompute()),
	}
	for _, id := range top.ComputeNodes {
		ec.available[id] = top.Node(id).CapacityGHz
	}
	return ec
}

// Topology returns the underlying immutable topology.
func (ec *EdgeCloud) Topology() *topology.Topology { return ec.top }

// ComputeNodes returns the IDs of V = CL ∪ DC in ascending order.
func (ec *EdgeCloud) ComputeNodes() []graph.NodeID { return ec.top.ComputeNodes }

// Capacity returns B(v). It panics for non-compute nodes, which indicates a
// caller bug (switches and base stations cannot evaluate queries).
func (ec *EdgeCloud) Capacity(v graph.NodeID) float64 {
	ec.mustCompute(v)
	return ec.top.Node(v).CapacityGHz
}

// Available returns A(v), the remaining computing resource of node v.
func (ec *EdgeCloud) Available(v graph.NodeID) float64 {
	ec.mustCompute(v)
	return ec.available[v]
}

// Used returns B(v) − A(v).
func (ec *EdgeCloud) Used(v graph.NodeID) float64 {
	return ec.Capacity(v) - ec.Available(v)
}

// Utilization returns Used/Capacity in [0,1].
func (ec *EdgeCloud) Utilization(v graph.NodeID) float64 {
	cap := ec.Capacity(v)
	if cap == 0 {
		return 1
	}
	return (cap - ec.available[v]) / cap
}

// ProcDelayPerGB returns d(v): seconds per GB per unit computing resource.
func (ec *EdgeCloud) ProcDelayPerGB(v graph.NodeID) float64 {
	ec.mustCompute(v)
	return ec.top.Node(v).ProcDelayPerGB
}

// TransferDelayPerGB returns dt(p_{u,v}) along the shortest path.
func (ec *EdgeCloud) TransferDelayPerGB(u, v graph.NodeID) float64 {
	return ec.top.TransferDelayPerGB(u, v)
}

// CanAllocate reports whether node v has at least amount GHz available.
func (ec *EdgeCloud) CanAllocate(v graph.NodeID, amount float64) bool {
	ec.mustCompute(v)
	return amount <= ec.available[v]+1e-9
}

// Allocate reserves amount GHz on node v. It returns an error when the node
// lacks resources; state is unchanged on error.
func (ec *EdgeCloud) Allocate(v graph.NodeID, amount float64) error {
	ec.mustCompute(v)
	if amount < 0 {
		return fmt.Errorf("cluster: negative allocation %v on node %d", amount, v)
	}
	if amount > ec.available[v]+1e-9 {
		return fmt.Errorf("cluster: node %d has %.3f GHz available, need %.3f",
			v, ec.available[v], amount)
	}
	ec.available[v] -= amount
	if ec.available[v] < 0 {
		ec.available[v] = 0
	}
	return nil
}

// Release returns amount GHz to node v, clamped at capacity.
func (ec *EdgeCloud) Release(v graph.NodeID, amount float64) error {
	ec.mustCompute(v)
	if amount < 0 {
		return fmt.Errorf("cluster: negative release %v on node %d", amount, v)
	}
	ec.available[v] += amount
	if cap := ec.Capacity(v); ec.available[v] > cap {
		ec.available[v] = cap
	}
	return nil
}

// Reset restores every node to full availability.
func (ec *EdgeCloud) Reset() {
	for _, id := range ec.top.ComputeNodes {
		ec.available[id] = ec.top.Node(id).CapacityGHz
	}
}

// Snapshot captures current availability; RestoreSnapshot rolls back to it.
// Algorithms use this for tentative bundle admission (all-or-nothing in
// Appro-G).
func (ec *EdgeCloud) Snapshot() map[graph.NodeID]float64 {
	s := make(map[graph.NodeID]float64, len(ec.available))
	for k, v := range ec.available {
		s[k] = v
	}
	return s
}

// RestoreSnapshot rolls availability back to a snapshot taken earlier.
func (ec *EdgeCloud) RestoreSnapshot(s map[graph.NodeID]float64) {
	for k, v := range s {
		ec.available[k] = v
	}
}

// TotalCapacity returns Σ_v B(v) over compute nodes.
func (ec *EdgeCloud) TotalCapacity() float64 {
	sum := 0.0
	for _, id := range ec.top.ComputeNodes {
		sum += ec.top.Node(id).CapacityGHz
	}
	return sum
}

// TotalAvailable returns Σ_v A(v) over compute nodes.
func (ec *EdgeCloud) TotalAvailable() float64 {
	sum := 0.0
	for _, v := range ec.available {
		sum += v
	}
	return sum
}

func (ec *EdgeCloud) mustCompute(v graph.NodeID) {
	if _, ok := ec.available[v]; !ok {
		panic(fmt.Sprintf("cluster: node %d is not a compute node", v))
	}
}
