package cluster

import (
	"sort"

	"edgerep/internal/graph"
)

// Liveness tracks which compute nodes are currently down. The ledger itself
// (EdgeCloud) stays capacity-only; failure state lives here so the online
// engine, the experiment drivers, and the invariant replays share one
// definition of "this node cannot serve".
type Liveness struct {
	down map[graph.NodeID]bool
	// gen counts state transitions. Consumers that mirror the down set into
	// a denser structure (the online engine's admission fast path) compare
	// generations as their epoch fence: an unchanged gen proves the mirror
	// is current without re-reading the map; a changed gen forces a refresh
	// before the mirror is consulted again.
	gen uint64
}

// NewLiveness starts with every node alive.
func NewLiveness() *Liveness {
	return &Liveness{down: make(map[graph.NodeID]bool)}
}

// MarkDown records node v as crashed. Reports whether the state changed
// (false when v was already down).
func (l *Liveness) MarkDown(v graph.NodeID) bool {
	if l.down[v] {
		return false
	}
	l.down[v] = true
	l.gen++
	return true
}

// MarkUp records node v as restored. Reports whether the state changed.
func (l *Liveness) MarkUp(v graph.NodeID) bool {
	if !l.down[v] {
		return false
	}
	delete(l.down, v)
	l.gen++
	return true
}

// Gen returns the liveness generation: it changes exactly when the down set
// changes, so an observer holding a mirror of the set knows the mirror is
// fresh iff the generation it was built at still matches. The caller owns
// synchronization, same as the rest of Liveness.
func (l *Liveness) Gen() uint64 { return l.gen }

// IsDown reports whether node v is crashed.
func (l *Liveness) IsDown(v graph.NodeID) bool { return l.down[v] }

// NumDown returns the number of crashed nodes.
func (l *Liveness) NumDown() int { return len(l.down) }

// DownNodes returns the crashed nodes in ascending order (deterministic
// iteration for traces and reports).
func (l *Liveness) DownNodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(l.down))
	for v := range l.down {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
